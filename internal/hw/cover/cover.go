// Package cover provides a lightweight coverage signal map over
// microarchitectural state transitions. The discovery fuzzer (Layer 6)
// attaches a Map to the cores of a pooled machine while a candidate
// program pair executes; every cache-set touch, miss-depth transition,
// TLB fill, branch-predictor update, flush write-back and bus-queue
// occupancy folds one bit into a fixed-size bitmap. Pairs that light up
// bits no earlier candidate reached get extra mutation energy, so the
// search concentrates on the frontier of reachable hardware states.
//
// Design constraints, in order:
//
//   - Timing-neutral: recording coverage must not change a single
//     measured cycle. Touch only reads values the hardware model already
//     computed and writes into the Map — it never feeds back.
//   - Deterministic: the bitmap is a pure function of the executed
//     transition stream. Same pair, same seed, same bits — on any worker
//     count, cold or warm.
//   - Allocation-free on the hot path: Touch is a mask-and-or into a
//     fixed array. The cpu layer guards every call site with a nil check
//     so detached runs (all of T2–T17, proofs, conformance) pay one
//     predictable branch and nothing else.
package cover

import (
	"encoding/hex"
	"fmt"
	"math/bits"
)

// Class partitions the signal space so that, say, TLB fill #3 and LLC
// set #3 land on different bits.
type Class uint8

// Transition classes recorded by the cpu and platform layers.
const (
	// ClassL1 is an L1 (I or D) set touch.
	ClassL1 Class = iota
	// ClassL2 is a private-L2 set touch on an L1 miss.
	ClassL2
	// ClassLLC is a shared-LLC set touch on an L2 miss.
	ClassLLC
	// ClassTLB is a TLB refill, keyed by virtual page number.
	ClassTLB
	// ClassBP is a branch-predictor update, keyed by pc and outcome.
	ClassBP
	// ClassBus is a bus access, keyed by core and queue-delay bucket
	// (the "bus slot" actually occupied).
	ClassBus
	// ClassLevel is the demand-miss depth reached, keyed by access
	// kind and satisfying level.
	ClassLevel
	// ClassFlush is a core-state flush, keyed by the dirty-line count
	// bucket (the history-dependent part of flush latency).
	ClassFlush

	// NumClasses counts the defined classes.
	NumClasses = int(ClassFlush) + 1
)

const (
	// MapBits is the bitmap size. Power of two so hashing is a mask.
	MapBits = 8192
	// mapWords is the backing array length.
	mapWords = MapBits / 64
)

// Map is a fixed-size coverage bitmap. The zero value is ready to use.
// A nil *Map is a valid no-op receiver for Touch, so instrumented code
// may hold an always-present pointer.
type Map struct {
	w [mapWords]uint64
}

// Touch folds one (class, value) transition into the map.
func (m *Map) Touch(class Class, v uint64) {
	if m == nil {
		return
	}
	// splitmix64-style finalizer over the class-salted value: cheap,
	// deterministic, and good enough dispersion for a feedback bitmap.
	h := v + 0x9e3779b97f4a7c15*uint64(class+1)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	bit := h & (MapBits - 1)
	m.w[bit>>6] |= 1 << (bit & 63)
}

// Reset clears the map.
func (m *Map) Reset() {
	if m == nil {
		return
	}
	m.w = [mapWords]uint64{}
}

// Count returns the number of set bits.
func (m *Map) Count() int {
	if m == nil {
		return 0
	}
	n := 0
	for _, w := range m.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// MergeNew ORs m into the accumulated map g and returns how many of m's
// bits were new to g — the fuzzer's "reached fresh state" fitness signal.
func (m *Map) MergeNew(g *Map) int {
	if m == nil || g == nil {
		return 0
	}
	fresh := 0
	for i, w := range m.w {
		fresh += bits.OnesCount64(w &^ g.w[i])
		g.w[i] |= w
	}
	return fresh
}

// Contains reports whether every set bit of m is already set in g.
func (m *Map) Contains(o *Map) bool {
	if o == nil {
		return true
	}
	if m == nil {
		return o.Count() == 0
	}
	for i, w := range o.w {
		if w&^m.w[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the map (nil-safe).
func (m *Map) Clone() *Map {
	c := &Map{}
	if m != nil {
		c.w = m.w
	}
	return c
}

// Signature digests the bitmap to a 64-bit FNV-1a value, for cheap
// equality checks and store fingerprints.
func (m *Map) Signature() uint64 {
	h := uint64(1469598103934665603)
	if m == nil {
		return h
	}
	for _, w := range m.w {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// MarshalText encodes the bitmap as lowercase hex (big-endian words),
// the store's discover/1 round-trip format.
func (m *Map) MarshalText() ([]byte, error) {
	buf := make([]byte, mapWords*8)
	if m != nil {
		for i, w := range m.w {
			for b := 0; b < 8; b++ {
				buf[i*8+b] = byte(w >> (56 - 8*b))
			}
		}
	}
	out := make([]byte, hex.EncodedLen(len(buf)))
	hex.Encode(out, buf)
	return out, nil
}

// UnmarshalText decodes the MarshalText format.
func (m *Map) UnmarshalText(text []byte) error {
	buf := make([]byte, hex.DecodedLen(len(text)))
	if _, err := hex.Decode(buf, text); err != nil {
		return fmt.Errorf("cover: bad map encoding: %v", err)
	}
	if len(buf) != mapWords*8 {
		return fmt.Errorf("cover: map encoding is %d bytes, want %d", len(buf), mapWords*8)
	}
	for i := range m.w {
		var w uint64
		for b := 0; b < 8; b++ {
			w = w<<8 | uint64(buf[i*8+b])
		}
		m.w[i] = w
	}
	return nil
}
