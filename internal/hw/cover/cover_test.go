package cover

import (
	"bytes"
	"testing"
)

func TestTouchDeterministicAndClassSeparated(t *testing.T) {
	a, b := &Map{}, &Map{}
	for i := uint64(0); i < 100; i++ {
		a.Touch(ClassL1, i)
		b.Touch(ClassL1, i)
	}
	if a.w != b.w {
		t.Fatal("same touch stream must produce the same bitmap")
	}
	c := &Map{}
	for i := uint64(0); i < 100; i++ {
		c.Touch(ClassLLC, i)
	}
	if a.w == c.w {
		t.Fatal("distinct classes must not alias the same bit pattern")
	}
}

func TestCountAndReset(t *testing.T) {
	m := &Map{}
	if m.Count() != 0 {
		t.Fatalf("fresh map count = %d", m.Count())
	}
	m.Touch(ClassTLB, 7)
	m.Touch(ClassTLB, 7) // idempotent
	if m.Count() != 1 {
		t.Fatalf("one distinct touch: count = %d, want 1", m.Count())
	}
	for i := uint64(0); i < 500; i++ {
		m.Touch(ClassBP, i)
	}
	if got := m.Count(); got < 400 || got > 500 {
		t.Fatalf("500 distinct touches set %d bits; hash dispersion looks broken", got)
	}
	m.Reset()
	if m.Count() != 0 {
		t.Fatalf("after Reset count = %d", m.Count())
	}
}

func TestMergeNewCountsOnlyFreshBits(t *testing.T) {
	global := &Map{}
	first := &Map{}
	for i := uint64(0); i < 50; i++ {
		first.Touch(ClassL2, i)
	}
	n1 := first.MergeNew(global)
	if n1 != first.Count() {
		t.Fatalf("first merge into empty global: fresh = %d, want %d", n1, first.Count())
	}
	// Same bits again: nothing fresh.
	if n := first.MergeNew(global); n != 0 {
		t.Fatalf("re-merging identical map reported %d fresh bits", n)
	}
	// Overlap plus genuinely new.
	second := &Map{}
	second.Touch(ClassL2, 0) // already in global
	second.Touch(ClassBus, 1<<8|3)
	fresh := second.MergeNew(global)
	if fresh < 1 || fresh > 2 {
		t.Fatalf("fresh = %d, want 1 (new bus bit) unless L2#0 collided", fresh)
	}
	if !global.Contains(second) {
		t.Fatal("global must contain every merged bit")
	}
}

func TestCloneAndSignature(t *testing.T) {
	m := &Map{}
	for i := uint64(0); i < 30; i++ {
		m.Touch(ClassFlush, i)
	}
	c := m.Clone()
	if c.w != m.w {
		t.Fatal("clone differs")
	}
	if c.Signature() != m.Signature() {
		t.Fatal("signature must be content-determined")
	}
	c.Touch(ClassFlush, 1000)
	if c.Signature() == m.Signature() && c.w != m.w {
		t.Fatal("signature failed to move with content")
	}
	if m.Signature() == (&Map{}).Signature() {
		t.Fatal("non-empty map must not share the empty signature")
	}
}

func TestTextRoundTrip(t *testing.T) {
	m := &Map{}
	for i := uint64(0); i < 64; i++ {
		m.Touch(Class(i%uint64(NumClasses)), i*977)
	}
	enc, err := m.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Map
	if err := back.UnmarshalText(enc); err != nil {
		t.Fatal(err)
	}
	if back.w != m.w {
		t.Fatal("text round-trip lost bits")
	}
	enc2, _ := back.MarshalText()
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding is not byte-stable")
	}
	if err := back.UnmarshalText([]byte("zz")); err == nil {
		t.Fatal("bad hex must error")
	}
	if err := back.UnmarshalText(enc[:10]); err == nil {
		t.Fatal("truncated encoding must error")
	}
}

func TestNilMapIsInert(t *testing.T) {
	var m *Map
	m.Touch(ClassL1, 1) // must not panic
	m.Reset()
	if m.Count() != 0 || m.MergeNew(&Map{}) != 0 {
		t.Fatal("nil map must observe as empty")
	}
	if c := m.Clone(); c == nil || c.Count() != 0 {
		t.Fatal("clone of nil must be an empty map")
	}
	g := &Map{}
	g.Touch(ClassL1, 1)
	if n := g.MergeNew(nil); n != 0 {
		t.Fatal("merging into nil must be a no-op")
	}
}
