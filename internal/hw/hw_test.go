package hw

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if PageSize != 4096 || LineSize != 64 || LinesPerPage != 64 {
		t.Fatalf("geometry drifted: page=%d line=%d lpp=%d", PageSize, LineSize, LinesPerPage)
	}
}

func TestAddressArithmeticRoundTrip(t *testing.T) {
	f := func(pfn uint64, off uint16) bool {
		pfn %= 1 << 40
		o := uint64(off) % PageSize
		pa := FrameBase(pfn) + PAddr(o)
		return PFN(pa) == pfn && PageOffset(Addr(pa)) == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineIndexConsistency(t *testing.T) {
	f := func(a uint64) bool {
		return LineIndex(PAddr(a)) == a>>LineBits && VLineIndex(Addr(a)) == a>>LineBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVPNConsistentWithPageOffset(t *testing.T) {
	a := Addr(0x12345678)
	if VPN(a)<<PageBits|uint64(PageOffset(a)) != uint64(a) {
		t.Fatal("VPN/PageOffset must decompose the address")
	}
}

func TestDefaultLatencyValid(t *testing.T) {
	if err := DefaultLatency().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyValidation(t *testing.T) {
	bad := []func(*Latency){
		func(l *Latency) { l.L1Hit = 0 },
		func(l *Latency) { l.Mem = 0 },
		func(l *Latency) { l.L1Hit, l.L2Hit = 12, 4 }, // not increasing
		func(l *Latency) { l.LLCHit = l.Mem + 1 },
	}
	for i, mut := range bad {
		l := DefaultLatency()
		mut(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid latency accepted", i)
		}
	}
}

func TestOwnerSentinels(t *testing.T) {
	if NoOwner >= 0 || KernelOwner >= 0 || NoOwner == KernelOwner {
		t.Fatal("owner sentinels must be distinct negatives")
	}
}
