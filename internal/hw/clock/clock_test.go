package clock

import (
	"testing"
	"testing/quick"
)

func TestZeroValueAndAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero value must read 0")
	}
	if got := c.Advance(5); got != 5 {
		t.Fatalf("Advance returned %d, want 5", got)
	}
	c.Advance(7)
	if c.Now() != 12 {
		t.Fatalf("Now = %d, want 12", c.Now())
	}
}

func TestPadUntilFromBehind(t *testing.T) {
	var c Clock
	c.Advance(100)
	padded, overrun := c.PadUntil(150)
	if overrun || padded != 50 || c.Now() != 150 {
		t.Fatalf("padded=%d overrun=%v now=%d", padded, overrun, c.Now())
	}
}

func TestPadUntilExactTargetIsNotOverrun(t *testing.T) {
	var c Clock
	c.Advance(150)
	padded, overrun := c.PadUntil(150)
	if overrun || padded != 0 {
		t.Fatalf("padded=%d overrun=%v", padded, overrun)
	}
}

func TestPadUntilOverrun(t *testing.T) {
	var c Clock
	c.Advance(200)
	padded, overrun := c.PadUntil(150)
	if !overrun || padded != 0 {
		t.Fatalf("padded=%d overrun=%v", padded, overrun)
	}
	if c.Now() != 200 {
		t.Fatal("overrun must not rewind the clock")
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(42)
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset must zero the clock")
	}
}

// Property: the padding primitive is exactly the §5 timestamp-comparison
// rule — after PadUntil(target) with now<=target the clock reads target,
// and the padded amount is the timestamp difference.
func TestPadUntilProperty(t *testing.T) {
	f := func(start, delta uint32) bool {
		var c Clock
		c.Advance(uint64(start))
		target := uint64(start) + uint64(delta)
		padded, overrun := c.PadUntil(target)
		return !overrun && padded == uint64(delta) && c.Now() == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	var c Clock
	c.Advance(9)
	if c.String() != "cycle 9" {
		t.Fatalf("String = %q", c.String())
	}
}
