// Package clock provides the per-core cycle counter and the padding
// arithmetic of the time model.
//
// The paper's formalisation (§5.1) needs only "a simple model of a
// hardware clock ... to allow reasoning about elapsed time intervals",
// with time advancing by a deterministic (but unspecified) function of
// the microarchitectural state. Clock is that model: a monotone counter
// advanced by the latencies the rest of internal/hw computes. PadUntil
// implements the verification-friendly padding primitive: "correct
// padding can be verified ... by simply comparing time stamps" (§5).
package clock

import "fmt"

// Clock is a core-local cycle counter. The zero value reads zero cycles.
type Clock struct {
	cycles uint64
}

// Now returns the current cycle count. This is the simulated analogue of
// a cycle-accurate timestamp counter (rdtsc); user code reads it through
// the kernel's UserCtx.Now.
func (c *Clock) Now() uint64 { return c.cycles }

// Advance moves the clock forward by n cycles and returns the new time.
func (c *Clock) Advance(n uint64) uint64 {
	c.cycles += n
	return c.cycles
}

// PadUntil advances the clock to target if it is earlier, returning the
// number of cycles spent padding. If the clock is already at or past
// target it returns 0 and reports overrun=true when strictly past —
// the condition the padding-sufficiency checker flags, because an
// overrun means the pad failed to hide the latency it was meant to mask.
func (c *Clock) PadUntil(target uint64) (padded uint64, overrun bool) {
	if c.cycles > target {
		return 0, true
	}
	padded = target - c.cycles
	c.cycles = target
	return padded, false
}

// Reset sets the clock to zero (between experiment trials).
func (c *Clock) Reset() { c.cycles = 0 }

// String implements fmt.Stringer.
func (c *Clock) String() string { return fmt.Sprintf("cycle %d", c.cycles) }
