package cpu

import (
	"testing"

	"timeprot/internal/hw"
	"timeprot/internal/hw/cover"
	"timeprot/internal/hw/mem"
)

// driveMix exercises every instrumented transition class: demand
// accesses down to memory, TLB refills, branches, and a flush with
// dirty lines. It returns the total cycles charged so callers can
// compare instrumented and uninstrumented runs.
func driveMix(t *testing.T, c *Core, pt *mem.PageTable) uint64 {
	t.Helper()
	var total uint64
	for i := 0; i < 64; i++ {
		info, err := c.Access(1, pt, hw.Addr(i*hw.PageSize), DataWrite, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Cycles
		c.Clock.Advance(info.Cycles)
	}
	for i := 0; i < 32; i++ {
		cyc, _ := c.Branch(hw.Addr(0x4000+i*4), i%3 == 0)
		total += cyc
		c.Clock.Advance(cyc)
	}
	rep := c.FlushCoreState()
	total += rep.Cycles
	c.Clock.Advance(rep.Cycles)
	return total
}

func TestCoverageHooksAreTimingNeutral(t *testing.T) {
	// Uninstrumented baseline.
	plain, ptA, _ := testRig(t)
	base := driveMix(t, plain, ptA)

	// Instrumented run on an identically built rig.
	inst, ptB, _ := testRig(t)
	cov := &cover.Map{}
	inst.Cov = cov
	got := driveMix(t, inst, ptB)

	if got != base {
		t.Fatalf("attaching coverage changed total cycles: %d vs %d", got, base)
	}
	if cov.Count() == 0 {
		t.Fatal("instrumented run recorded no coverage")
	}
}

func TestCoverageRecordsEachClass(t *testing.T) {
	c, pt, _ := testRig(t)
	probe := func(f func(m *cover.Map)) int {
		m := &cover.Map{}
		f(m)
		return m.Count()
	}

	// TLB + L1/L2/LLC/level/bus via a cold access.
	n := probe(func(m *cover.Map) {
		c.Cov = m
		if _, err := c.Access(1, pt, 0x100, DataRead, 1); err != nil {
			t.Fatal(err)
		}
		c.Cov = nil
	})
	if n < 5 {
		t.Fatalf("cold access set %d coverage bits, want >=5 (L1, L2, LLC, level, TLB)", n)
	}

	// Branch class.
	n = probe(func(m *cover.Map) {
		c.Cov = m
		c.Branch(0x8000, true)
		c.Cov = nil
	})
	if n == 0 {
		t.Fatal("branch resolve recorded no coverage")
	}

	// Flush class.
	if _, err := c.Access(1, pt, 0x200, DataWrite, 1); err != nil {
		t.Fatal(err)
	}
	n = probe(func(m *cover.Map) {
		c.Cov = m
		c.FlushCoreState()
		c.Cov = nil
	})
	if n == 0 {
		t.Fatal("flush recorded no coverage")
	}
}

func TestResetDetachesCoverage(t *testing.T) {
	c, _, _ := testRig(t)
	c.Cov = &cover.Map{}
	c.Reset()
	if c.Cov != nil {
		t.Fatal("Reset must detach the coverage map (pooled-machine hygiene)")
	}
}
