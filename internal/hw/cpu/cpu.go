// Package cpu composes the per-core microarchitecture: split VIPT L1
// caches, a private PIPT L2, an ASID-tagged TLB, a branch predictor, a
// stride prefetcher, and a cycle clock, all in front of a shared PIPT
// last-level cache reached over the shared bus.
//
// The composition realises the paper's resource taxonomy (§4.1):
//
//   - L1I/L1D are virtually indexed: page colouring cannot partition
//     them, so they are *flushable* state, reset on domain switches.
//   - The private L2 and the TLB, branch predictor and prefetcher are
//     likewise core-local time-shared state: flushable.
//   - The LLC is physically indexed and shared between cores: flushing
//     cannot help against a concurrent observer, so it is *partitionable*
//     state, divided by page colouring.
//   - The bus is stateless: neither flushable nor partitionable — the
//     paper's excluded channel.
//
// Every access returns the cycles it consumed; the caller advances the
// core clock. The latency of each operation is a deterministic function
// of the microarchitectural state — the concrete instance of the paper's
// "deterministic yet unspecified" time model (§5.1).
package cpu

import (
	"fmt"

	"timeprot/internal/hw"
	"timeprot/internal/hw/branch"
	"timeprot/internal/hw/cache"
	"timeprot/internal/hw/clock"
	"timeprot/internal/hw/cover"
	"timeprot/internal/hw/interconn"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/prefetch"
	"timeprot/internal/hw/tlb"
)

// Config fixes a core's private geometry.
type Config struct {
	// ID is the core's index in the machine.
	ID int
	// L1ISets/L1IWays and L1DSets/L1DWays size the split L1 caches.
	L1ISets, L1IWays int
	L1DSets, L1DWays int
	// L2Sets/L2Ways size the private unified L2.
	L2Sets, L2Ways int
	// TLBEntries sizes the TLB.
	TLBEntries int
	// BPEntries sizes the branch predictor table (power of two).
	BPEntries int
	// PrefetchThreshold is the stride confirmation count; 0 disables
	// the prefetcher.
	PrefetchThreshold int
}

// DefaultConfig returns a small but structurally faithful core: 32 KiB
// 8-way L1s, 256 KiB 8-way L2, 64-entry TLB, 512-entry branch predictor,
// stride prefetcher armed after 2 confirmations.
func DefaultConfig(id int) Config {
	return Config{
		ID:      id,
		L1ISets: 64, L1IWays: 8,
		L1DSets: 64, L1DWays: 8,
		L2Sets: 512, L2Ways: 8,
		TLBEntries:        64,
		BPEntries:         512,
		PrefetchThreshold: 2,
	}
}

// Uncore is the machine state shared by all cores.
type Uncore struct {
	// LLC is the shared physically indexed last-level cache. It is
	// inclusive: evicting a line back-invalidates every core's private
	// copies, as on contemporary Intel parts — the mechanism that
	// makes cross-core LLC conflicts observable (§4.1).
	LLC *cache.Cache
	// Bus serialises LLC-miss traffic to memory.
	Bus *interconn.Bus
	// Mem is physical memory (frame ownership / colours).
	Mem *mem.PhysMem
	// Lat is the machine's latency parameter set.
	Lat hw.Latency

	cores []*Core
}

// backInvalidate removes an LLC-evicted line from every core's private
// caches (inclusion). It returns the number of dirty private copies
// dropped; their data is considered merged into the write-back already
// charged by the caller.
func (u *Uncore) backInvalidate(paLine uint64) (dirtyCopies int) {
	for _, c := range u.cores {
		if _, d := c.L1D.Invalidate(c.L1D.SetIndex(paLine), paLine); d {
			dirtyCopies++
		}
		c.L1I.Invalidate(c.L1I.SetIndex(paLine), paLine)
		if _, d := c.L2.Invalidate(c.L2.SetIndex(paLine), paLine); d {
			dirtyCopies++
		}
	}
	return dirtyCopies
}

// Core is one processor core. With SMT enabled the scheduler runs two
// hardware threads over the same Core; they share every field including
// the clock, which is exactly why SMT co-residency of distinct domains is
// unfixable by flushing or colouring (§4.1).
type Core struct {
	cfg Config

	L1I *cache.Cache
	L1D *cache.Cache
	L2  *cache.Cache
	TLB *tlb.TLB
	BP  *branch.Predictor
	PF  *prefetch.Stride

	Clock clock.Clock

	// Cov, when non-nil, records microarchitectural state transitions
	// into a coverage bitmap (see internal/hw/cover). It is observation
	// only: attaching a map never changes a measured cycle. All call
	// sites are nil-guarded so detached runs pay one branch.
	Cov *cover.Map

	un *Uncore
}

// New builds a core against the shared uncore.
func New(cfg Config, un *Uncore) *Core {
	if un == nil {
		panic("cpu: nil uncore")
	}
	c := &Core{
		cfg: cfg,
		L1I: cache.New(cache.Config{Name: fmt.Sprintf("core%d.L1I", cfg.ID), Sets: cfg.L1ISets, Ways: cfg.L1IWays, Indexing: cache.VirtIndexed}),
		L1D: cache.New(cache.Config{Name: fmt.Sprintf("core%d.L1D", cfg.ID), Sets: cfg.L1DSets, Ways: cfg.L1DWays, Indexing: cache.VirtIndexed}),
		L2:  cache.New(cache.Config{Name: fmt.Sprintf("core%d.L2", cfg.ID), Sets: cfg.L2Sets, Ways: cfg.L2Ways, Indexing: cache.PhysIndexed}),
		TLB: tlb.New(cfg.TLBEntries),
		BP:  branch.New(cfg.BPEntries),
		un:  un,
	}
	if cfg.PrefetchThreshold > 0 {
		c.PF = prefetch.New(cfg.PrefetchThreshold)
	}
	// Back-invalidation locates private-cache lines by physical line
	// number, which is only valid while the virtually indexed L1s'
	// index bits lie within the page offset (as on real VIPT L1s).
	if cfg.L1DSets*hw.LineSize > hw.PageSize || cfg.L1ISets*hw.LineSize > hw.PageSize {
		panic("cpu: L1 sets must fit within a page (VIPT index == PIPT index)")
	}
	un.cores = append(un.cores, c)
	return c
}

// Reset restores the core's private microarchitecture to its freshly
// constructed state: caches, TLB, branch predictor, prefetcher, and the
// cycle clock. Machine pooling relies on a Reset core being
// indistinguishable from one built by New with the same configuration.
func (c *Core) Reset() {
	c.L1I.Reset()
	c.L1D.Reset()
	c.L2.Reset()
	c.TLB.Reset()
	c.BP.Reset()
	if c.PF != nil {
		c.PF.Reset()
	}
	c.Clock.Reset()
	// A fresh core has no coverage map attached; pooled reuse must not
	// leak one run's observer into the next.
	c.Cov = nil
}

// ID returns the core's index.
func (c *Core) ID() int { return c.cfg.ID }

// Config returns the core's geometry.
func (c *Core) Config() Config { return c.cfg }

// Uncore returns the shared uncore.
func (c *Core) Uncore() *Uncore { return c.un }

// AccessKind distinguishes the three demand access types.
type AccessKind int

const (
	// InstrFetch is an instruction fetch through the L1I.
	InstrFetch AccessKind = iota
	// DataRead is a load through the L1D.
	DataRead
	// DataWrite is a store through the L1D (write-allocate).
	DataWrite
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case InstrFetch:
		return "ifetch"
	case DataRead:
		return "read"
	case DataWrite:
		return "write"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// AccessInfo reports where an access was satisfied, for traces and tests.
type AccessInfo struct {
	// Cycles is the total latency of the access.
	Cycles uint64
	// Level is 1, 2, 3 (LLC) or 4 (memory).
	Level int
	// TLBMiss is true if a page walk was needed.
	TLBMiss bool
	// PA is the translated physical address.
	PA hw.PAddr
	// LLCSet is the LLC set touched if the access reached the LLC
	// (level >= 3), else -1.
	LLCSet int
}

// Fault is returned when a virtual address has no translation.
type Fault struct {
	VA   hw.Addr
	ASID tlb.ASID
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("cpu: page fault at va %#x (asid %d)", uint64(f.VA), f.ASID)
}

// Translate resolves va under pt, consulting the TLB. It returns the
// physical address and the cycles consumed (0 on a TLB hit; the walk
// cost on a miss).
func (c *Core) Translate(asid tlb.ASID, pt *mem.PageTable, va hw.Addr) (pa hw.PAddr, cycles uint64, miss bool, err error) {
	vpn := hw.VPN(va)
	if pfn, hit := c.TLB.Lookup(asid, vpn); hit {
		return hw.FrameBase(pfn) + hw.PAddr(hw.PageOffset(va)), 0, false, nil
	}
	pte, ok := pt.Lookup(vpn)
	if !ok {
		return 0, c.un.Lat.PageWalk, true, &Fault{VA: va, ASID: asid}
	}
	c.TLB.Refill(asid, vpn, pte.PFN, pte.Global)
	if c.Cov != nil {
		c.Cov.Touch(cover.ClassTLB, uint64(vpn))
	}
	return hw.FrameBase(pte.PFN) + hw.PAddr(hw.PageOffset(va)), c.un.Lat.PageWalk, true, nil
}

// Access performs one demand access by virtual address, walking the cache
// hierarchy and charging all latencies, including dirty write-backs and
// bus queueing. owner attributes cache fills for partition checking.
func (c *Core) Access(asid tlb.ASID, pt *mem.PageTable, va hw.Addr, kind AccessKind, owner hw.DomainID) (AccessInfo, error) {
	pa, tcyc, tmiss, err := c.Translate(asid, pt, va)
	if err != nil {
		return AccessInfo{Cycles: tcyc, TLBMiss: tmiss, LLCSet: -1}, err
	}
	info := c.accessPA(va, pa, kind, owner)
	info.TLBMiss = tmiss
	info.Cycles += tcyc
	info.PA = pa

	// Demand data accesses train the prefetcher; a confirmed stride
	// triggers a background fill that changes cache state without
	// charging the demand access (the asynchrony is what makes
	// prefetcher state a covert-channel vector rather than a mere
	// slowdown).
	if c.PF != nil && kind != InstrFetch {
		if pfVA, ok := c.PF.Observe(va); ok {
			if pfPA, okT := pt.Translate(pfVA); okT {
				c.accessPA(pfVA, pfPA, DataRead, owner)
			}
		}
	}
	return info, nil
}

// accessPA walks L1 -> L2 -> LLC -> memory for an already-translated
// access. Tags are full physical line numbers so victims can be written
// back precisely.
func (c *Core) accessPA(va hw.Addr, pa hw.PAddr, kind AccessKind, owner hw.DomainID) AccessInfo {
	lat := c.un.Lat
	paLine := hw.LineIndex(pa)
	vaLine := hw.VLineIndex(va)
	write := kind == DataWrite

	l1 := c.L1D
	if kind == InstrFetch {
		l1 = c.L1I
	}

	info := AccessInfo{LLCSet: -1}
	// L1: virtually indexed, physically tagged.
	l1Set := l1.SetIndex(vaLine)
	res := l1.Access(l1Set, paLine, write, owner)
	info.Cycles += lat.L1Hit
	if c.Cov != nil {
		c.Cov.Touch(cover.ClassL1, uint64(l1Set)|uint64(kind)<<16)
	}
	if res.WritebackVictim {
		info.Cycles += c.writeback(res.VictimTag, res.VictimOwner)
	}
	if res.Hit {
		info.Level = 1
		c.covLevel(kind, info.Level)
		return info
	}

	// L2: physically indexed private cache.
	l2Set := c.L2.SetIndex(paLine)
	res = c.L2.Access(l2Set, paLine, false, owner)
	info.Cycles += lat.L2Hit
	if c.Cov != nil {
		c.Cov.Touch(cover.ClassL2, uint64(l2Set))
	}
	if res.WritebackVictim {
		info.Cycles += c.writeback(res.VictimTag, res.VictimOwner)
	}
	if res.Hit {
		info.Level = 2
		c.covLevel(kind, info.Level)
		return info
	}

	// LLC: physically indexed shared cache.
	llcSet := c.un.LLC.SetIndex(paLine)
	res = c.un.LLC.Access(llcSet, paLine, false, owner)
	info.Cycles += lat.LLCHit
	info.LLCSet = llcSet
	if c.Cov != nil {
		c.Cov.Touch(cover.ClassLLC, uint64(llcSet))
	}
	if res.Evicted {
		dirtyCopies := c.un.backInvalidate(res.VictimTag)
		if res.WritebackVictim || dirtyCopies > 0 {
			// Dirty LLC victim (or a dirtier private copy) goes
			// to memory over the bus.
			info.Cycles += c.busAccess(info.Cycles)
		}
	}
	if res.Hit {
		info.Level = 3
		c.covLevel(kind, info.Level)
		return info
	}

	// Memory: bus transfer plus DRAM latency.
	info.Cycles += c.busAccess(info.Cycles)
	info.Cycles += lat.Mem
	info.Level = 4
	c.covLevel(kind, info.Level)
	return info
}

// busAccess performs one bus transfer at the core clock plus offset,
// recording the occupied bus slot (queue-delay bucket) as coverage.
func (c *Core) busAccess(offset uint64) uint64 {
	cycles := c.un.Bus.Access(c.cfg.ID, c.Clock.Now()+offset)
	if c.Cov != nil {
		beat := c.un.Lat.BusBeat
		if beat == 0 {
			beat = 1
		}
		slot := cycles / beat
		if slot > 255 {
			slot = 255
		}
		c.Cov.Touch(cover.ClassBus, uint64(c.cfg.ID)<<8|slot)
	}
	return cycles
}

// covLevel records the demand-miss depth an access bottomed out at.
func (c *Core) covLevel(kind AccessKind, level int) {
	if c.Cov != nil {
		c.Cov.Touch(cover.ClassLevel, uint64(kind)<<8|uint64(level))
	}
}

// writeback pushes an evicted dirty line (identified by its physical line
// number) into the next level below the cache it was evicted from. For
// simplicity every write-back is installed into the LLC; its cost is one
// LLC access (plus a bus+memory transfer if the LLC in turn evicts dirty
// data).
func (c *Core) writeback(paLine uint64, owner hw.DomainID) uint64 {
	set := c.un.LLC.SetIndex(paLine)
	res := c.un.LLC.Access(set, paLine, true, owner)
	cycles := c.un.Lat.LLCHit
	if res.Evicted {
		dirtyCopies := c.un.backInvalidate(res.VictimTag)
		if res.WritebackVictim || dirtyCopies > 0 {
			cycles += c.un.Bus.Access(c.cfg.ID, c.Clock.Now()+cycles)
		}
	}
	return cycles
}

// Branch resolves a conditional branch at pc, charging the misprediction
// penalty when the predictor was wrong.
func (c *Core) Branch(pc hw.Addr, taken bool) (cycles uint64, mispredicted bool) {
	mispredicted = c.BP.Resolve(pc, taken)
	if c.Cov != nil {
		v := uint64(pc) << 2
		if taken {
			v |= 2
		}
		if mispredicted {
			v |= 1
		}
		c.Cov.Touch(cover.ClassBP, v)
	}
	if mispredicted {
		return c.un.Lat.Mispredict, true
	}
	return 1, false
}

// FlushReport itemises one full flush of the core-local state.
type FlushReport struct {
	// DirtyL1D and DirtyL2 count the write-backs performed.
	DirtyL1D, DirtyL2 int
	// TLBEntries counts TLB entries dropped.
	TLBEntries int
	// Cycles is the total latency: FlushBase plus the per-dirty-line
	// cost. It is a function of execution history — the channel that
	// padding closes (§4.2).
	Cycles uint64
}

// FlushCoreState resets every flushable resource: both L1s, the private
// L2, the TLB, the branch predictor and the prefetcher. Dirty lines are
// written back into the LLC (preserving partition attribution). The
// returned report carries the history-dependent latency.
func (c *Core) FlushCoreState() FlushReport {
	var rep FlushReport
	lat := c.un.Lat

	// Write back dirty L1D and L2 contents before invalidating. The
	// write-backs land in the owning domain's frames, so attribution
	// follows the physical frame owner and partitioning is preserved.
	for _, line := range c.L1D.DirtyLines() {
		c.writeback(line, c.un.Mem.Owner(line/hw.LinesPerPage))
		rep.DirtyL1D++
	}
	for _, line := range c.L2.DirtyLines() {
		c.writeback(line, c.un.Mem.Owner(line/hw.LinesPerPage))
		rep.DirtyL2++
	}
	c.L1I.FlushAll()
	c.L1D.FlushAll()
	c.L2.FlushAll()
	rep.TLBEntries = c.TLB.FlushAll()
	c.BP.Flush()
	if c.PF != nil {
		c.PF.Flush()
	}
	rep.Cycles = lat.FlushBase + uint64(rep.DirtyL1D+rep.DirtyL2)*lat.FlushPerDirtyLine
	if c.Cov != nil {
		// The dirty-line count is the history-dependent part of flush
		// latency — the flush-channel signal itself.
		c.Cov.Touch(cover.ClassFlush, uint64(rep.DirtyL1D+rep.DirtyL2))
	}
	return rep
}

// FlushableFingerprint digests all flushable state; after FlushCoreState
// it must equal the fingerprint of a fresh core (the defined reset state
// of §4.1). Used by the flush-invariant checker.
func (c *Core) FlushableFingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(c.L1I.ValidCount()))
	mix(uint64(c.L1D.ValidCount()))
	mix(uint64(c.L1D.DirtyCount()))
	mix(uint64(c.L2.ValidCount()))
	mix(uint64(c.L2.DirtyCount()))
	occ := c.TLB.OccupancyByASID()
	mix(uint64(len(occ)))
	mix(c.BP.Fingerprint())
	if c.PF != nil {
		mix(c.PF.Fingerprint())
	}
	return h
}
