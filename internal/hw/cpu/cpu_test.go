package cpu

import (
	"errors"
	"testing"

	"timeprot/internal/hw"
	"timeprot/internal/hw/cache"
	"timeprot/internal/hw/interconn"
	"timeprot/internal/hw/mem"
)

// testRig builds a single-core machine with a 64-colour LLC.
func testRig(t *testing.T) (*Core, *mem.PageTable, *mem.Allocator) {
	t.Helper()
	un := &Uncore{
		LLC: cache.New(cache.Config{Name: "LLC", Sets: 4096, Ways: 16, Indexing: cache.PhysIndexed}),
		Bus: interconn.NewBus(8),
		Mem: mem.NewPhysMem(8192, 64),
		Lat: hw.DefaultLatency(),
	}
	c := New(DefaultConfig(0), un)
	alloc := mem.NewAllocator(un.Mem)
	pt := mem.NewPageTable(1)
	// Identity-ish mapping: 64 pages for domain 1.
	pfns, err := alloc.AllocN(1, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, pfn := range pfns {
		pt.Map(uint64(i), mem.PTE{PFN: pfn, Writable: true})
	}
	return c, pt, alloc
}

func TestColdMissCostsThroughMemory(t *testing.T) {
	c, pt, _ := testRig(t)
	info, err := c.Access(1, pt, 0x100, DataRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 4 {
		t.Fatalf("cold access level %d, want 4 (memory)", info.Level)
	}
	if !info.TLBMiss {
		t.Fatal("cold access must walk the page table")
	}
	lat := hw.DefaultLatency()
	want := lat.PageWalk + lat.L1Hit + lat.L2Hit + lat.LLCHit + lat.BusBeat + lat.Mem
	if info.Cycles != want {
		t.Fatalf("cycles = %d, want %d", info.Cycles, want)
	}
}

func TestHotHitCostsL1Only(t *testing.T) {
	c, pt, _ := testRig(t)
	if _, err := c.Access(1, pt, 0x100, DataRead, 1); err != nil {
		t.Fatal(err)
	}
	info, err := c.Access(1, pt, 0x100, DataRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 1 || info.TLBMiss {
		t.Fatalf("hot access: level=%d tlbMiss=%v", info.Level, info.TLBMiss)
	}
	if info.Cycles != hw.DefaultLatency().L1Hit {
		t.Fatalf("cycles = %d, want pure L1 hit", info.Cycles)
	}
}

func TestHitLatencyOrderingIsTheProbeSignal(t *testing.T) {
	// The prime-and-probe decoder relies on L1 < L2 < LLC < memory
	// latency being distinguishable.
	c, pt, _ := testRig(t)
	cold, _ := c.Access(1, pt, 0x2000, DataRead, 1)
	hot, _ := c.Access(1, pt, 0x2000, DataRead, 1)
	if hot.Cycles >= cold.Cycles {
		t.Fatalf("hot (%d) must be faster than cold (%d)", hot.Cycles, cold.Cycles)
	}
}

func TestPageFault(t *testing.T) {
	c, pt, _ := testRig(t)
	_, err := c.Access(1, pt, hw.Addr(999<<hw.PageBits), DataRead, 1)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if hw.VPN(f.VA) != 999 {
		t.Fatalf("fault VA wrong: %+v", f)
	}
}

func TestWriteMakesDirtyAndFlushCountsIt(t *testing.T) {
	c, pt, _ := testRig(t)
	for i := 0; i < 10; i++ {
		if _, err := c.Access(1, pt, hw.Addr(i*hw.LineSize), DataWrite, 1); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.FlushCoreState()
	if rep.DirtyL1D != 10 {
		t.Fatalf("flushed %d dirty L1D lines, want 10", rep.DirtyL1D)
	}
	lat := hw.DefaultLatency()
	want := lat.FlushBase + 10*lat.FlushPerDirtyLine
	if rep.Cycles != want {
		t.Fatalf("flush cycles %d, want %d", rep.Cycles, want)
	}
}

func TestFlushLatencyDependsOnHistory(t *testing.T) {
	// This is the §4.2 secondary channel: more dirty lines, longer
	// flush.
	dirtyFlush := func(writes int) uint64 {
		c, pt, _ := testRig(t)
		for i := 0; i < writes; i++ {
			if _, err := c.Access(1, pt, hw.Addr(i*hw.LineSize), DataWrite, 1); err != nil {
				t.Fatal(err)
			}
		}
		return c.FlushCoreState().Cycles
	}
	if dirtyFlush(40) <= dirtyFlush(2) {
		t.Fatal("flush latency must grow with dirty lines")
	}
}

func TestFlushRestoresDefinedState(t *testing.T) {
	c, pt, _ := testRig(t)
	fresh := c.FlushableFingerprint()
	for i := 0; i < 200; i++ {
		if _, err := c.Access(1, pt, hw.Addr((i%60)*hw.LineSize), DataWrite, 1); err != nil {
			t.Fatal(err)
		}
		c.Branch(hw.Addr(i*4), i%3 == 0)
	}
	if c.FlushableFingerprint() == fresh {
		t.Fatal("state fingerprint should differ after activity")
	}
	c.FlushCoreState()
	if c.FlushableFingerprint() != fresh {
		t.Fatal("flush must restore the defined reset fingerprint")
	}
}

func TestWritebackLandsInLLCWithFrameOwner(t *testing.T) {
	c, pt, _ := testRig(t)
	if _, err := c.Access(1, pt, 0x40, DataWrite, 1); err != nil {
		t.Fatal(err)
	}
	c.FlushCoreState()
	occ := c.Uncore().LLC.OccupancyByOwner()
	if occ[1] == 0 {
		t.Fatalf("written-back line not attributed to frame owner: %v", occ)
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	c, _, _ := testRig(t)
	cyc, mis := c.Branch(0x40, true) // predictor resets to not-taken
	if !mis || cyc != hw.DefaultLatency().Mispredict {
		t.Fatalf("first taken branch: cyc=%d mis=%v", cyc, mis)
	}
	c.Branch(0x40, true)
	cyc, mis = c.Branch(0x40, true)
	if mis || cyc != 1 {
		t.Fatalf("trained branch: cyc=%d mis=%v", cyc, mis)
	}
}

func TestPrefetcherWarmsNextLine(t *testing.T) {
	c, pt, _ := testRig(t)
	// Walk a stride-1 line pattern to arm the prefetcher.
	for i := 0; i < 4; i++ {
		if _, err := c.Access(1, pt, hw.Addr(i*hw.LineSize), DataRead, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Line 4 should have been prefetched by the access to line 3.
	info, err := c.Access(1, pt, hw.Addr(4*hw.LineSize), DataRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 1 {
		t.Fatalf("prefetched line hit at level %d, want 1", info.Level)
	}
}

func TestVIPTIndexingUsesVirtualBits(t *testing.T) {
	// Two virtual pages mapping to the same physical frame land in L1
	// sets chosen by their *virtual* addresses: VIPT.
	c, _, alloc := testRig(t)
	pt := mem.NewPageTable(2)
	pfn, err := alloc.Alloc(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt.Map(100, mem.PTE{PFN: pfn})
	pt.Map(200, mem.PTE{PFN: pfn})
	if _, err := c.Access(2, pt, hw.Addr(100<<hw.PageBits), DataRead, 2); err != nil {
		t.Fatal(err)
	}
	// Same PA via a different VA in the same page-offset: the L1 set
	// is the same here because set bits come from the page offset for
	// a 64-set L1 (fits in a page). The aliasing consequence we care
	// about for colouring is at the LLC, tested in the cache package;
	// here we just pin the L1 hit via the second VA (same line tag).
	info, err := c.Access(2, pt, hw.Addr(200<<hw.PageBits), DataRead, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 1 {
		t.Fatalf("aliased access level %d, want 1 (same physical tag, same virtual set)", info.Level)
	}
}

func TestCrossCoreLLCConflictVisibility(t *testing.T) {
	// Two cores share the LLC: one core's fills evict the other's
	// lines in the same set — the substrate of the T3 experiment.
	un := &Uncore{
		LLC: cache.New(cache.Config{Name: "LLC", Sets: 256, Ways: 2, Indexing: cache.PhysIndexed}),
		Bus: interconn.NewBus(8),
		Mem: mem.NewPhysMem(65536, 4),
		Lat: hw.DefaultLatency(),
	}
	c0, c1 := New(DefaultConfig(0), un), New(DefaultConfig(1), un)
	alloc := mem.NewAllocator(un.Mem)
	ptA, ptB := mem.NewPageTable(1), mem.NewPageTable(2)
	// Same colour frames for both domains => conflict.
	pfnsA, _ := alloc.AllocN(1, mem.NewColorSet(1), 3)
	pfnsB, _ := alloc.AllocN(2, mem.NewColorSet(1), 3)
	for i, p := range pfnsA {
		ptA.Map(uint64(i), mem.PTE{PFN: p})
	}
	for i, p := range pfnsB {
		ptB.Map(uint64(i), mem.PTE{PFN: p})
	}
	// Core 0 loads its line; core 1 thrashes the same LLC set from
	// the same-coloured frames.
	if _, err := c0.Access(1, ptA, 0, DataRead, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c1.Access(2, ptB, hw.Addr(i<<hw.PageBits), DataRead, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Core 0's copy was evicted from the (2-way) LLC set; after its
	// private L1/L2 are flushed the reload must come from memory.
	c0.FlushCoreState()
	info, err := c0.Access(1, ptA, 0, DataRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 4 {
		t.Fatalf("victim reload level %d, want 4 (evicted by sibling core)", info.Level)
	}
}

// TestInclusiveBackInvalidation: evicting a line from the LLC must drop
// every core's private copies (the inclusion property cross-core attacks
// rely on).
func TestInclusiveBackInvalidation(t *testing.T) {
	un := &Uncore{
		LLC: cache.New(cache.Config{Name: "LLC", Sets: 64, Ways: 1, Indexing: cache.PhysIndexed}),
		Bus: interconn.NewBus(8),
		Mem: mem.NewPhysMem(65536, 1),
		Lat: hw.DefaultLatency(),
	}
	c0, c1 := New(DefaultConfig(0), un), New(DefaultConfig(1), un)
	alloc := mem.NewAllocator(un.Mem)
	ptA, ptB := mem.NewPageTable(1), mem.NewPageTable(2)
	pA, _ := alloc.Alloc(1, nil)
	pB, _ := alloc.Alloc(2, nil)
	ptA.Map(0, mem.PTE{PFN: pA, Writable: true})
	ptB.Map(0, mem.PTE{PFN: pB, Writable: true})

	// Core 0 loads (and dirties) a line; it now lives in its L1 and in
	// the 1-way LLC set.
	if _, err := c0.Access(1, ptA, 0, DataWrite, 1); err != nil {
		t.Fatal(err)
	}
	if c0.L1D.DirtyCount() != 1 {
		t.Fatal("core 0 should hold a dirty private copy")
	}
	// Core 1 maps a DIFFERENT frame whose line lands in the same LLC
	// set (same set index if pfn congruent mod 64); force congruence.
	for un.Mem.Color(pB) != un.Mem.Color(pA) || (pB%64) != (pA%64) {
		pB, _ = alloc.Alloc(2, nil)
	}
	ptB.Map(0, mem.PTE{PFN: pB})
	if _, err := c1.Access(2, ptB, 0, DataRead, 2); err != nil {
		t.Fatal(err)
	}
	// Core 0's private copy must be gone (back-invalidated), dirty or
	// not.
	if c0.L1D.DirtyCount() != 0 && c0.L1D.ValidCount() != 0 {
		// The line may survive only if the LLC sets differ; verify.
		t.Fatalf("back-invalidation failed: valid=%d dirty=%d", c0.L1D.ValidCount(), c0.L1D.DirtyCount())
	}
	// Core 0's reload misses all the way to memory.
	c0.FlushCoreState()
	info, err := c0.Access(1, ptA, 0, DataRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 4 {
		t.Fatalf("reload level %d, want 4", info.Level)
	}
}

// TestPrefetcherDisabledConfig: threshold 0 removes the prefetcher and
// sequential reads gain no L1 warmth.
func TestPrefetcherDisabledConfig(t *testing.T) {
	un := &Uncore{
		LLC: cache.New(cache.Config{Name: "LLC", Sets: 4096, Ways: 16, Indexing: cache.PhysIndexed}),
		Bus: interconn.NewBus(8),
		Mem: mem.NewPhysMem(8192, 64),
		Lat: hw.DefaultLatency(),
	}
	cfg := DefaultConfig(0)
	cfg.PrefetchThreshold = 0
	c := New(cfg, un)
	alloc := mem.NewAllocator(un.Mem)
	pt := mem.NewPageTable(1)
	pfn, _ := alloc.Alloc(1, nil)
	pt.Map(0, mem.PTE{PFN: pfn})
	for i := 0; i < 4; i++ {
		if _, err := c.Access(1, pt, hw.Addr(i*hw.LineSize), DataRead, 1); err != nil {
			t.Fatal(err)
		}
	}
	info, err := c.Access(1, pt, hw.Addr(4*hw.LineSize), DataRead, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level == 1 {
		t.Fatal("line was prefetched despite the prefetcher being disabled")
	}
}
