// Package prefetch implements a reference-prediction (stride) prefetcher
// state machine.
//
// Prefetcher state is core-local flushable state in the paper's taxonomy
// (§4.1): it observes a domain's access pattern (secret-dependent
// strides!) and changes later access latencies, so it must be reset on
// domain switches.
package prefetch

import "timeprot/internal/hw"

// Stride is a single-stream stride detector: after Threshold consecutive
// accesses with the same line-granular stride it predicts the next line.
type Stride struct {
	// Threshold is the number of consecutive equal strides required
	// before prefetching begins.
	Threshold int

	lastLine   uint64
	stride     int64
	confidence int
	primed     bool
	stats      Stats
}

// Stats accumulates prefetcher statistics.
type Stats struct {
	Observations uint64
	Prefetches   uint64
	Flushes      uint64
}

// New constructs a stride prefetcher that fires after threshold
// consecutive same-stride accesses.
func New(threshold int) *Stride {
	if threshold < 1 {
		threshold = 1
	}
	return &Stride{Threshold: threshold}
}

// Stats returns a copy of the statistics.
func (s *Stride) Stats() Stats { return s.stats }

// Observe feeds one demand access (by virtual address) into the detector.
// If the stride pattern is established it returns the virtual address of
// the line to prefetch and ok=true; the caller (the core) performs the
// actual fill through the cache hierarchy.
func (s *Stride) Observe(va hw.Addr) (prefetchVA hw.Addr, ok bool) {
	s.stats.Observations++
	lineNum := hw.VLineIndex(va)
	if !s.primed {
		s.primed = true
		s.lastLine = lineNum
		return 0, false
	}
	d := int64(lineNum) - int64(s.lastLine)
	s.lastLine = lineNum
	if d == 0 {
		return 0, false // same line: no new information
	}
	if d == s.stride {
		if s.confidence < s.Threshold {
			s.confidence++
		}
	} else {
		s.stride = d
		s.confidence = 1
	}
	if s.confidence >= s.Threshold {
		next := int64(lineNum) + s.stride
		if next < 0 {
			return 0, false
		}
		s.stats.Prefetches++
		return hw.Addr(uint64(next) << hw.LineBits), true
	}
	return 0, false
}

// Flush resets the detector to its defined initial state.
func (s *Stride) Flush() {
	s.lastLine = 0
	s.stride = 0
	s.confidence = 0
	s.primed = false
	s.stats.Flushes++
}

// Reset restores the prefetcher to its freshly constructed state: the
// flush state with zero statistics (Flush counts itself; Reset does not).
func (s *Stride) Reset() {
	s.Flush()
	s.stats = Stats{}
}

// Fingerprint digests the state for the flush invariant checker.
func (s *Stride) Fingerprint() uint64 {
	h := s.lastLine
	h = h*31 + uint64(s.stride)
	h = h*31 + uint64(s.confidence)
	if s.primed {
		h = h*31 + 1
	}
	return h
}
