package prefetch

import (
	"testing"
	"testing/quick"

	"timeprot/internal/hw"
	"timeprot/internal/rng"
)

func access(s *Stride, lineNum uint64) (hw.Addr, bool) {
	return s.Observe(hw.Addr(lineNum << hw.LineBits))
}

func TestStrideDetection(t *testing.T) {
	s := New(2)
	if _, ok := access(s, 10); ok {
		t.Fatal("first access must not prefetch")
	}
	if _, ok := access(s, 11); ok {
		t.Fatal("one stride sample is below threshold")
	}
	va, ok := access(s, 12)
	if !ok {
		t.Fatal("established stride must prefetch")
	}
	if got := hw.VLineIndex(va); got != 13 {
		t.Fatalf("prefetch line %d, want 13", got)
	}
}

func TestNegativeStride(t *testing.T) {
	s := New(2)
	access(s, 100)
	access(s, 98)
	va, ok := access(s, 96)
	if !ok {
		t.Fatal("negative stride must be detected")
	}
	if got := hw.VLineIndex(va); got != 94 {
		t.Fatalf("prefetch line %d, want 94", got)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	s := New(2)
	access(s, 10)
	access(s, 11)
	access(s, 12) // established, stride 1
	if _, ok := access(s, 20); ok {
		t.Fatal("stride break must reset confidence")
	}
	// Two consecutive samples of the new stride re-establish it, the
	// same warm-up as initial detection.
	va, ok := access(s, 28)
	if !ok || hw.VLineIndex(va) != 36 {
		t.Fatalf("new stride must re-establish: got ok=%v va-line=%d", ok, hw.VLineIndex(va))
	}
}

func TestSameLineAccessesIgnored(t *testing.T) {
	s := New(2)
	access(s, 10)
	access(s, 11)
	if _, ok := access(s, 11); ok {
		t.Fatal("same-line access should not prefetch")
	}
	// Pattern must still be established by the next stride-1 access.
	va, ok := access(s, 12)
	if !ok || hw.VLineIndex(va) != 13 {
		t.Fatalf("got ok=%v line=%d", ok, hw.VLineIndex(va))
	}
}

func TestFlushResetsState(t *testing.T) {
	s := New(2)
	fresh := New(2)
	access(s, 10)
	access(s, 11)
	access(s, 12)
	s.Flush()
	if s.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("flush must restore initial state")
	}
	if _, ok := access(s, 13); ok {
		t.Fatal("first post-flush access must not prefetch")
	}
}

// Property: after Flush the fingerprint equals the fresh fingerprint for
// any history — the defined-reset-state requirement of §4.1.
func TestFlushPropertyHistoryIndependent(t *testing.T) {
	want := New(3).Fingerprint()
	f := func(seed uint64, n uint16) bool {
		s := New(3)
		r := rng.New(seed)
		for i := 0; i < int(n%256); i++ {
			s.Observe(hw.Addr(r.Uint64n(1 << 30)))
		}
		s.Flush()
		return s.Fingerprint() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestThresholdFloor(t *testing.T) {
	s := New(0) // clamped to 1
	access(s, 5)
	if _, ok := access(s, 6); !ok {
		t.Fatal("threshold 1 must prefetch on first stride")
	}
}
