// Package mem models physical memory: frames, page colours, per-domain
// page tables, and a colour-aware frame allocator.
//
// Page colouring (§4.1, citing Kessler & Hill, Liedtke et al., Lynch et
// al.) exploits the fact that in a large physically indexed cache a page
// maps to a fixed subset of the sets — its colour, PFN mod NumColors. By
// giving different security domains frames of disjoint colours, the OS
// partitions the cache without hardware support.
package mem

import (
	"fmt"

	"timeprot/internal/hw"
)

// PhysMem describes physical memory and tracks frame ownership.
type PhysMem struct {
	numFrames int
	numColors int
	owner     []hw.DomainID
}

// NewPhysMem constructs physical memory of numFrames frames, coloured for
// a cache inducing numColors colours.
func NewPhysMem(numFrames, numColors int) *PhysMem {
	if numFrames <= 0 {
		panic(fmt.Sprintf("mem: numFrames must be positive, got %d", numFrames))
	}
	if numColors <= 0 {
		panic(fmt.Sprintf("mem: numColors must be positive, got %d", numColors))
	}
	m := &PhysMem{
		numFrames: numFrames,
		numColors: numColors,
		owner:     make([]hw.DomainID, numFrames),
	}
	for i := range m.owner {
		m.owner[i] = hw.NoOwner
	}
	return m
}

// NumFrames returns the number of physical frames.
func (m *PhysMem) NumFrames() int { return m.numFrames }

// NumColors returns the number of page colours.
func (m *PhysMem) NumColors() int { return m.numColors }

// Color returns the page colour of a frame.
func (m *PhysMem) Color(pfn uint64) int { return int(pfn % uint64(m.numColors)) }

// Reset releases every frame back to the unowned state, restoring the
// memory to its freshly constructed state for machine pooling.
func (m *PhysMem) Reset() {
	for i := range m.owner {
		m.owner[i] = hw.NoOwner
	}
}

// Owner returns the domain owning a frame.
func (m *PhysMem) Owner(pfn uint64) hw.DomainID {
	if pfn >= uint64(m.numFrames) {
		return hw.NoOwner
	}
	return m.owner[pfn]
}

// setOwner records frame ownership (allocator use only).
func (m *PhysMem) setOwner(pfn uint64, d hw.DomainID) { m.owner[pfn] = d }

// ColorSet is a set of page colours, used to express a domain's colour
// allocation.
type ColorSet map[int]bool

// NewColorSet builds a set from a list of colours.
func NewColorSet(colors ...int) ColorSet {
	s := make(ColorSet, len(colors))
	for _, c := range colors {
		s[c] = true
	}
	return s
}

// ColorRange builds the set {lo, ..., hi-1}.
func ColorRange(lo, hi int) ColorSet {
	s := make(ColorSet, hi-lo)
	for c := lo; c < hi; c++ {
		s[c] = true
	}
	return s
}

// Contains reports membership.
func (s ColorSet) Contains(c int) bool { return s[c] }

// Intersects reports whether two sets share a colour.
func (s ColorSet) Intersects(o ColorSet) bool {
	for c := range s {
		if o[c] {
			return true
		}
	}
	return false
}

// Sorted returns the colours in ascending order.
func (s ColorSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Allocator hands out physical frames, optionally restricted to a colour
// set. Allocation is deterministic; within a colour set it rotates
// round-robin across the colours (lowest free PFN within each colour), so
// a domain's pages spread evenly over its partition — the behaviour a
// colouring kernel needs for its partition to be usable.
type Allocator struct {
	mem  *PhysMem
	next []uint64 // per-color next candidate pfn, for O(1) amortised scans
	free []bool
	rr   int // round-robin rotation over the requested colour set
}

// NewAllocator constructs an allocator over all frames of m.
func NewAllocator(m *PhysMem) *Allocator {
	a := &Allocator{
		mem:  m,
		next: make([]uint64, m.numColors),
		free: make([]bool, m.numFrames),
	}
	for c := range a.next {
		a.next[c] = uint64(c)
	}
	for i := range a.free {
		a.free[i] = true
	}
	return a
}

// Reset restores the allocator (and its backing memory's ownership map)
// to the freshly constructed state: every frame free and unowned, scan
// cursors and the round-robin rotation rewound. Allocation order after a
// Reset is identical to a new allocator's, which is what lets machine
// pooling reuse one without perturbing any frame-placement decision.
func (a *Allocator) Reset() {
	a.mem.Reset()
	for c := range a.next {
		a.next[c] = uint64(c)
	}
	for i := range a.free {
		a.free[i] = true
	}
	a.rr = 0
}

// Alloc allocates one frame for domain d. If colors is non-nil the frame's
// colour must be in the set (the colouring policy); if nil any frame is
// acceptable (colouring disabled).
func (a *Allocator) Alloc(d hw.DomainID, colors ColorSet) (pfn uint64, err error) {
	if colors == nil {
		for p := uint64(0); p < uint64(a.mem.numFrames); p++ {
			if a.free[p] {
				a.take(p, d)
				return p, nil
			}
		}
		return 0, fmt.Errorf("mem: out of frames for domain %d", d)
	}
	sorted := colors.Sorted()
	for _, c := range sorted {
		if c < 0 || c >= a.mem.numColors {
			return 0, fmt.Errorf("mem: colour %d out of range [0,%d)", c, a.mem.numColors)
		}
	}
	for k := 0; k < len(sorted); k++ {
		c := sorted[(a.rr+k)%len(sorted)]
		for p := a.next[c]; p < uint64(a.mem.numFrames); p += uint64(a.mem.numColors) {
			if a.free[p] {
				a.next[c] = p
				a.take(p, d)
				a.rr = (a.rr + k + 1) % len(sorted)
				return p, nil
			}
		}
	}
	return 0, fmt.Errorf("mem: out of frames in colours %v for domain %d", sorted, d)
}

// AllocN allocates n frames and returns their PFNs.
func (a *Allocator) AllocN(d hw.DomainID, colors ColorSet, n int) ([]uint64, error) {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		p, err := a.Alloc(d, colors)
		if err != nil {
			return nil, fmt.Errorf("mem: AllocN(%d) failed at frame %d: %w", n, i, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func (a *Allocator) take(pfn uint64, d hw.DomainID) {
	a.free[pfn] = false
	a.mem.setOwner(pfn, d)
}

// Free returns a frame to the allocator.
func (a *Allocator) Free(pfn uint64) {
	if pfn >= uint64(a.mem.numFrames) || a.free[pfn] {
		return
	}
	a.free[pfn] = true
	a.mem.setOwner(pfn, hw.NoOwner)
	c := a.mem.Color(pfn)
	if pfn < a.next[c] {
		a.next[c] = pfn
	}
}

// FreeCount returns the number of free frames.
func (a *Allocator) FreeCount() int {
	n := 0
	for _, f := range a.free {
		if f {
			n++
		}
	}
	return n
}

// PageTable maps a domain's virtual pages to physical frames. Page tables
// are kernel data; the TLB caches their translations.
type PageTable struct {
	asidOwner hw.DomainID
	entries   map[uint64]PTE
	version   uint64
}

// PTE is a page-table entry.
type PTE struct {
	PFN      uint64
	Writable bool
	Global   bool
}

// NewPageTable constructs an empty page table for domain d.
func NewPageTable(d hw.DomainID) *PageTable {
	return &PageTable{asidOwner: d, entries: make(map[uint64]PTE)}
}

// Owner returns the owning domain.
func (pt *PageTable) Owner() hw.DomainID { return pt.asidOwner }

// Version counts mutations; the TLB-consistency checkers use it.
func (pt *PageTable) Version() uint64 { return pt.version }

// Map installs a translation.
func (pt *PageTable) Map(vpn uint64, e PTE) {
	pt.entries[vpn] = e
	pt.version++
}

// Unmap removes a translation, reporting whether it existed.
func (pt *PageTable) Unmap(vpn uint64) bool {
	if _, ok := pt.entries[vpn]; !ok {
		return false
	}
	delete(pt.entries, vpn)
	pt.version++
	return true
}

// Lookup resolves a VPN.
func (pt *PageTable) Lookup(vpn uint64) (PTE, bool) {
	e, ok := pt.entries[vpn]
	return e, ok
}

// Translate resolves a full virtual address to a physical address.
func (pt *PageTable) Translate(va hw.Addr) (hw.PAddr, bool) {
	e, ok := pt.entries[hw.VPN(va)]
	if !ok {
		return 0, false
	}
	return hw.FrameBase(e.PFN) + hw.PAddr(hw.PageOffset(va)), true
}

// Size returns the number of mappings.
func (pt *PageTable) Size() int { return len(pt.entries) }
