package mem

import (
	"testing"
	"testing/quick"

	"timeprot/internal/hw"
)

func TestColorArithmetic(t *testing.T) {
	m := NewPhysMem(256, 64)
	if m.Color(0) != 0 || m.Color(63) != 63 || m.Color(64) != 0 || m.Color(130) != 2 {
		t.Fatal("colour must be PFN mod NumColors")
	}
}

func TestAllocRespectsColorSet(t *testing.T) {
	m := NewPhysMem(256, 64)
	a := NewAllocator(m)
	colors := NewColorSet(3, 5)
	for i := 0; i < 6; i++ {
		pfn, err := a.Alloc(1, colors)
		if err != nil {
			t.Fatal(err)
		}
		if c := m.Color(pfn); !colors.Contains(c) {
			t.Fatalf("allocated colour %d outside %v", c, colors.Sorted())
		}
		if m.Owner(pfn) != 1 {
			t.Fatalf("owner not recorded")
		}
	}
}

func TestAllocDisjointColorSetsGiveDisjointFrames(t *testing.T) {
	m := NewPhysMem(512, 64)
	a := NewAllocator(m)
	hi, err := a.AllocN(1, ColorRange(0, 32), 40)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := a.AllocN(2, ColorRange(32, 64), 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range hi {
		if m.Color(p) >= 32 {
			t.Fatalf("hi frame %d has colour %d", p, m.Color(p))
		}
	}
	for _, p := range lo {
		if m.Color(p) < 32 {
			t.Fatalf("lo frame %d has colour %d", p, m.Color(p))
		}
	}
}

func TestAllocNilColorsTakesAnything(t *testing.T) {
	m := NewPhysMem(8, 4)
	a := NewAllocator(m)
	seen := make(map[uint64]bool)
	for i := 0; i < 8; i++ {
		pfn, err := a.Alloc(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[pfn] {
			t.Fatalf("frame %d allocated twice", pfn)
		}
		seen[pfn] = true
	}
	if _, err := a.Alloc(1, nil); err == nil {
		t.Fatal("exhausted allocator must error")
	}
}

func TestAllocExhaustionWithinColor(t *testing.T) {
	m := NewPhysMem(8, 4) // colours 0..3, 2 frames each
	a := NewAllocator(m)
	cs := NewColorSet(2)
	if _, err := a.AllocN(1, cs, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1, cs); err == nil {
		t.Fatal("colour 2 exhausted, Alloc must error")
	}
	// Other colours must still work.
	if _, err := a.Alloc(1, NewColorSet(0)); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	m := NewPhysMem(8, 4)
	a := NewAllocator(m)
	pfn, err := a.Alloc(1, NewColorSet(1))
	if err != nil {
		t.Fatal(err)
	}
	a.Free(pfn)
	if m.Owner(pfn) != hw.NoOwner {
		t.Fatal("freed frame keeps owner")
	}
	got, err := a.Alloc(2, NewColorSet(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != pfn {
		t.Fatalf("expected reuse of lowest frame %d, got %d", pfn, got)
	}
	if a.FreeCount() != 7 {
		t.Fatalf("free count %d, want 7", a.FreeCount())
	}
}

func TestAllocDeterministic(t *testing.T) {
	run := func() []uint64 {
		m := NewPhysMem(128, 16)
		a := NewAllocator(m)
		out, err := a.AllocN(1, ColorRange(0, 8), 32)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a1, a2 := run(), run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("allocation order nondeterministic at %d: %d vs %d", i, a1[i], a2[i])
		}
	}
}

func TestColorSetOps(t *testing.T) {
	a := ColorRange(0, 4)
	b := ColorRange(4, 8)
	if a.Intersects(b) {
		t.Fatal("disjoint ranges must not intersect")
	}
	if !a.Intersects(NewColorSet(3, 9)) {
		t.Fatal("sharing colour 3 must intersect")
	}
	got := NewColorSet(5, 1, 3).Sorted()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v", got)
		}
	}
}

func TestAllocBadColor(t *testing.T) {
	m := NewPhysMem(8, 4)
	a := NewAllocator(m)
	if _, err := a.Alloc(1, NewColorSet(7)); err == nil {
		t.Fatal("out-of-range colour must error")
	}
}

func TestPageTableMapUnmapTranslate(t *testing.T) {
	pt := NewPageTable(1)
	pt.Map(0x10, PTE{PFN: 0x99, Writable: true})
	pa, ok := pt.Translate(hw.Addr(0x10<<hw.PageBits | 0x123))
	if !ok || pa != hw.PAddr(0x99<<hw.PageBits|0x123) {
		t.Fatalf("Translate = (%#x,%v)", pa, ok)
	}
	if v := pt.Version(); v != 1 {
		t.Fatalf("version %d, want 1", v)
	}
	if !pt.Unmap(0x10) {
		t.Fatal("Unmap existing must return true")
	}
	if pt.Unmap(0x10) {
		t.Fatal("Unmap missing must return false")
	}
	if _, ok := pt.Translate(hw.Addr(0x10 << hw.PageBits)); ok {
		t.Fatal("translation survived unmap")
	}
	if pt.Version() != 2 {
		t.Fatalf("version %d, want 2 (unmap of missing VPN must not bump)", pt.Version())
	}
}

// Property: an address translated through a PTE keeps its page offset and
// lands in the mapped frame.
func TestTranslatePreservesOffset(t *testing.T) {
	f := func(vpn, pfn uint64, off uint16) bool {
		vpn %= 1 << 20
		pfn %= 1 << 20
		pt := NewPageTable(1)
		pt.Map(vpn, PTE{PFN: pfn})
		va := hw.Addr(vpn<<hw.PageBits | uint64(off)%hw.PageSize)
		pa, ok := pt.Translate(va)
		return ok && hw.PFN(pa) == pfn && hw.PageOffset(hw.Addr(pa)) == hw.PageOffset(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPhysMem(0, 4) },
		func() { NewPhysMem(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
