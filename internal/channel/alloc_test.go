package channel

import "testing"

// Allocation gate on the capacity-estimator hot path: accumulating
// samples and estimating must not allocate per sample. The bootstrap
// and the histogram allocate a bounded amount per ESTIMATE (resample
// buffers, bin tables); anything per SAMPLE makes adaptive sweeps —
// which re-estimate after every rounds-ladder rung — quadratic GC
// churn. The gate compares two sample counts and bounds the marginal
// allocations per sample.
func estimateAllocs(t *testing.T, n int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		s := NewSamples()
		for i := 0; i < n; i++ {
			s.Add(i%4, float64(100+i%7))
		}
		if _, err := EstimateScalar(s, 8, 42); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEstimatorAllocBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const small, big = 512, 4096
	a := estimateAllocs(t, small)
	b := estimateAllocs(t, big)
	perSample := (b - a) / float64(big-small)
	t.Logf("fixed %.0f allocs, marginal %.4f allocs/sample", a, perSample)
	// The threshold admits append-doubling capacity growth (O(log n)
	// allocations, paid once per slice) but fails any per-trial
	// rebuilding: before the bootstrap and floor loops reused one
	// Reset Samples, this measured ~0.38 allocs/sample.
	if perSample > 0.05 {
		t.Errorf("estimator allocates %.4f times per sample (want < 0.05): the hot path regressed", perSample)
	}
}
