package channel

import (
	"fmt"
	"math"
	"sort"

	"timeprot/internal/rng"
)

// Estimator owns every scratch buffer behind a capacity estimate: the
// count matrix and its row headers, the Blahut–Arimoto distributions,
// the floor's shuffle, the bootstrap's resample buffers, and the
// flattened pair views of the input sample set. A zero Estimator is
// ready to use; reusing one across estimates reuses all of it, which is
// what makes the experiment engine's per-cell hot path — one estimate
// per rounds-ladder rung, 51 channel matrices per estimate — allocation
// free in the steady state.
//
// Correctness contract: an Estimator's estimate is bit-identical to the
// package-level EstimateScalar/EstimatePairs on the same inputs (those
// functions ARE a fresh Estimator). The scratch is rewound and fully
// overwritten on every call; the only observable difference from the
// historical per-call allocations is the allocation count. An Estimator
// is not safe for concurrent use.
type Estimator struct {
	symu, outu []int // sorted distinct input/output symbols
	flat       []float64
	rows       [][]float64
	m          Matrix // reused header; P rows point into flat

	p, d, q []float64 // Blahut–Arimoto scratch

	shuffled []int // floor permutation scratch
	caps     []float64
	bs, bo   []int    // bootstrap pair resamples
	s        *Samples // floor/bootstrap resample set

	syms    []int // flattened (symbol, value) pairs of the input set
	vals    []float64
	binVals []float64 // values in flatten order, for bin edges
	sorted  []float64 // sorted values, for bin edges
	edges   []float64
}

func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// sortedUniqueInto appends xs to dst, then sorts and dedups in place —
// the same sorted-distinct result as uniqueInts without the map.
func sortedUniqueInto(dst, xs []int) []int {
	dst = append(dst, xs...)
	sort.Ints(dst)
	out := dst[:0]
	for i, v := range dst {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// countRows returns a zeroed rows×cols count matrix carved out of the
// estimator's flat backing.
func (e *Estimator) countRows(rows, cols int) [][]float64 {
	e.flat = resizeFloats(e.flat, rows*cols)
	for i := range e.flat {
		e.flat[i] = 0
	}
	if cap(e.rows) < rows {
		e.rows = make([][]float64, rows)
	}
	e.rows = e.rows[:rows]
	for i := range e.rows {
		e.rows[i] = e.flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return e.rows
}

// normaliseInto is normalise on the estimator's reused matrix: rows are
// normalised in place and the matrix header points at them. The matrix
// is valid until the estimator's next fromPairs/fromScalar call.
func (e *Estimator) normaliseInto(counts [][]float64, inputs []int) (*Matrix, error) {
	m := &e.m
	m.Inputs = inputs
	m.P = m.P[:0]
	for _, row := range counts {
		total := 0.0
		for _, c := range row {
			total += c
		}
		if total == 0 {
			continue // symbol never observed; drop its row
		}
		for j, c := range row {
			row[j] = c / total
		}
		m.P = append(m.P, row)
	}
	if len(m.P) == 0 {
		return nil, fmt.Errorf("channel: empty matrix")
	}
	m.Outputs = len(m.P[0])
	return m, nil
}

// fromPairs is FromPairs on the estimator's scratch. The returned
// matrix aliases the scratch: consume it (capacity, mutual information)
// before the next fromPairs/fromScalar call overwrites it.
func (e *Estimator) fromPairs(syms, outs []int) (*Matrix, error) {
	if len(syms) != len(outs) {
		return nil, fmt.Errorf("channel: %d symbols but %d outputs", len(syms), len(outs))
	}
	if len(syms) == 0 {
		return nil, fmt.Errorf("channel: no samples")
	}
	e.symu = sortedUniqueInto(e.symu[:0], syms)
	e.outu = sortedUniqueInto(e.outu[:0], outs)
	counts := e.countRows(len(e.symu), len(e.outu))
	for k := range syms {
		counts[sort.SearchInts(e.symu, syms[k])][sort.SearchInts(e.outu, outs[k])]++
	}
	return e.normaliseInto(counts, e.symu)
}

// binEdgesInto is binEdges on the estimator's scratch, producing the
// identical edge values: distinct-value midpoints when the distinct
// count fits in maxBins, equal-frequency quantiles otherwise.
func (e *Estimator) binEdgesInto(vals []float64, maxBins int) []float64 {
	e.sorted = append(e.sorted[:0], vals...)
	sort.Float64s(e.sorted)
	all := e.sorted
	distinct := 0
	for i, v := range all {
		if i == 0 || v != all[i-1] {
			distinct++
		}
	}
	edges := e.edges[:0]
	if distinct <= maxBins {
		// Distinct-value bins: edges between consecutive distinct values.
		prev := all[0]
		for _, v := range all[1:] {
			if v != prev {
				edges = append(edges, (prev+v)/2)
				prev = v
			}
		}
	} else {
		// Quantile bins over the raw (with duplicates) distribution.
		for b := 1; b < maxBins; b++ {
			x := all[b*len(all)/maxBins]
			if len(edges) == 0 || x > edges[len(edges)-1] {
				edges = append(edges, x)
			}
		}
	}
	e.edges = edges
	return edges
}

// fromScalar is FromScalar on the estimator's scratch; the returned
// matrix aliases the scratch like fromPairs's.
func (e *Estimator) fromScalar(s *Samples, maxBins int) (*Matrix, error) {
	if s.Len() == 0 {
		return nil, fmt.Errorf("channel: no samples")
	}
	if maxBins < 2 {
		maxBins = 2
	}
	e.symu = s.symbolsInto(e.symu[:0])
	e.binVals = e.binVals[:0]
	for _, sym := range e.symu {
		e.binVals = append(e.binVals, s.bySym[sym]...)
	}
	edges := e.binEdgesInto(e.binVals, maxBins)
	counts := e.countRows(len(e.symu), len(edges)+1)
	for i, sym := range e.symu {
		for _, v := range s.bySym[sym] {
			counts[i][binOf(v, edges)]++
		}
	}
	return e.normaliseInto(counts, e.symu)
}

// capacity is Matrix.Capacity on the estimator's scratch distributions.
func (e *Estimator) capacity(m *Matrix, maxIter int, tol float64) float64 {
	n := len(m.P)
	if n <= 1 {
		return 0
	}
	e.p = resizeFloats(e.p, n)
	e.d = resizeFloats(e.d, n)
	e.q = resizeFloats(e.q, m.Outputs)
	p, d, q := e.p, e.d, e.q
	for i := range p {
		p[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		for j := range q {
			q[j] = 0
		}
		for i := range m.P {
			for j, pij := range m.P[i] {
				q[j] += p[i] * pij
			}
		}
		// d_i = D(P_i || q), the per-symbol information gain.
		maxD, avgD := math.Inf(-1), 0.0
		for i := range m.P {
			di := 0.0
			for j, pij := range m.P[i] {
				if pij > 0 && q[j] > 0 {
					di += pij * math.Log2(pij/q[j])
				}
			}
			d[i] = di
			if di > maxD {
				maxD = di
			}
			avgD += p[i] * di
		}
		if maxD-avgD < tol {
			return avgD
		}
		// Multiplicative update p_i <- p_i * 2^{d_i}, normalised.
		total := 0.0
		for i := range p {
			p[i] *= math.Exp2(d[i])
			total += p[i]
		}
		for i := range p {
			p[i] /= total
		}
	}
	return e.mutualInformation(m, p)
}

// mutualInformation is Matrix.MutualInformation on scratch; p is the
// input distribution (never nil on this path).
func (e *Estimator) mutualInformation(m *Matrix, p []float64) float64 {
	e.q = resizeFloats(e.q, m.Outputs)
	q := e.q
	for j := range q {
		q[j] = 0
	}
	for i := range m.P {
		for j, pij := range m.P[i] {
			q[j] += p[i] * pij
		}
	}
	mi := 0.0
	for i := range m.P {
		for j, pij := range m.P[i] {
			if pij > 0 && p[i] > 0 && q[j] > 0 {
				mi += p[i] * pij * math.Log2(pij/q[j])
			}
		}
	}
	if mi < 0 {
		mi = 0 // guard against floating point underflow
	}
	return mi
}

// miUniform computes the uniform-input mutual information, the
// MutualInformation(nil) of the free path.
func (e *Estimator) miUniform(m *Matrix) float64 {
	n := len(m.P)
	e.d = resizeFloats(e.d, n) // d is free between capacity calls
	p := e.d
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return e.mutualInformation(m, p)
}

// resampleSet returns the estimator's reusable floor/bootstrap sample
// set, emptied.
func (e *Estimator) resampleSet() *Samples {
	if e.s == nil {
		e.s = NewSamples()
	}
	e.s.Reset()
	return e.s
}

// EstimateScalar measures the channel from scalar observations, exactly
// as the package-level EstimateScalar but on reused scratch.
func (e *Estimator) EstimateScalar(s *Samples, maxBins int, seed uint64) (Estimate, error) {
	m, err := e.fromScalar(s, maxBins)
	if err != nil {
		return Estimate{}, err
	}
	// The point estimate is consumed now: the floor's and bootstrap's
	// matrices reuse its backing. Capacity and MI are pure functions of
	// the matrix, so the evaluation order cannot change their values.
	capBits := e.capacity(m, baIterations, baTolerance)
	mi := e.miUniform(m)
	bins := m.Outputs
	e.syms = e.syms[:0]
	e.vals = e.vals[:0]
	e.symu = s.symbolsInto(e.symu[:0])
	for _, sym := range e.symu {
		for _, v := range s.bySym[sym] {
			e.syms = append(e.syms, sym)
			e.vals = append(e.vals, v)
		}
	}
	floor, err := e.scalarFloor(e.syms, e.vals, maxBins, seed)
	if err != nil {
		return Estimate{}, err
	}
	lo, hi := e.bootstrapScalarCI(e.syms, e.vals, maxBins, seed)
	return Estimate{
		CapacityBits: capBits,
		MIUniform:    mi,
		FloorBits:    floor,
		CILow:        lo,
		CIHigh:       hi,
		N:            s.Len(),
		Bins:         bins,
	}, nil
}

// EstimatePairs measures the channel from discrete (sent, decoded)
// pairs, exactly as the package-level EstimatePairs but on reused
// scratch.
func (e *Estimator) EstimatePairs(syms, outs []int, seed uint64) (Estimate, error) {
	m, err := e.fromPairs(syms, outs)
	if err != nil {
		return Estimate{}, err
	}
	capBits := e.capacity(m, baIterations, baTolerance)
	mi := e.miUniform(m)
	bins := m.Outputs
	r := rng.New(seed)
	floor := 0.0
	e.shuffled = append(e.shuffled[:0], syms...)
	for trial := 0; trial < floorTrials; trial++ {
		permute(r, e.shuffled)
		fm, err := e.fromPairs(e.shuffled, outs)
		if err != nil {
			return Estimate{}, err
		}
		floor += e.capacity(fm, baIterations, baTolerance)
	}
	lo, hi := e.bootstrapPairsCI(syms, outs, seed)
	return Estimate{
		CapacityBits: capBits,
		MIUniform:    mi,
		FloorBits:    floor / floorTrials,
		CILow:        lo,
		CIHigh:       hi,
		N:            len(syms),
		Bins:         bins,
	}, nil
}

// scalarFloor is the shuffled-label noise floor on reused scratch.
func (e *Estimator) scalarFloor(syms []int, vals []float64, maxBins int, seed uint64) (float64, error) {
	r := rng.New(seed)
	// The shuffle scratch must not alias e.syms: copy into e.bs, which
	// the scalar path never uses for resampling.
	e.bs = append(e.bs[:0], syms...)
	floor := 0.0
	for trial := 0; trial < floorTrials; trial++ {
		permute(r, e.bs)
		s := e.resampleSet()
		for i := range e.bs {
			s.Add(e.bs[i], vals[i])
		}
		m, err := e.fromScalar(s, maxBins)
		if err != nil {
			return 0, err
		}
		floor += e.capacity(m, baIterations, baTolerance)
	}
	return floor / floorTrials, nil
}

// bootstrapScalarCI resamples (symbol, value) pairs with replacement
// and re-estimates capacity on each resample, on reused scratch.
func (e *Estimator) bootstrapScalarCI(syms []int, vals []float64, maxBins int, seed uint64) (lo, hi float64) {
	r := rng.New(bootSeed(seed))
	caps := e.caps[:0]
	for trial := 0; trial < bootTrials; trial++ {
		s := e.resampleSet()
		for i := 0; i < len(syms); i++ {
			j := r.Intn(len(syms))
			s.Add(syms[j], vals[j])
		}
		m, err := e.fromScalar(s, maxBins)
		if err != nil {
			caps = append(caps, 0)
			continue
		}
		caps = append(caps, e.capacity(m, baIterations, baTolerance))
	}
	e.caps = caps
	return ciBounds(caps)
}

// bootstrapPairsCI is the discrete-pairs analogue of bootstrapScalarCI.
func (e *Estimator) bootstrapPairsCI(syms, outs []int, seed uint64) (lo, hi float64) {
	r := rng.New(bootSeed(seed))
	caps := e.caps[:0]
	e.bs = resizeInts(e.bs, len(syms))
	e.bo = resizeInts(e.bo, len(outs))
	for trial := 0; trial < bootTrials; trial++ {
		for i := range syms {
			j := r.Intn(len(syms))
			e.bs[i], e.bo[i] = syms[j], outs[j]
		}
		m, err := e.fromPairs(e.bs, e.bo)
		if err != nil {
			caps = append(caps, 0)
			continue
		}
		caps = append(caps, e.capacity(m, baIterations, baTolerance))
	}
	e.caps = caps
	return ciBounds(caps)
}

// symbolsInto is Symbols into a reused buffer.
func (s *Samples) symbolsInto(dst []int) []int {
	for k, vs := range s.bySym {
		if len(vs) > 0 {
			dst = append(dst, k)
		}
	}
	sort.Ints(dst)
	return dst
}
