// Package channel estimates covert/side-channel capacity from observed
// samples, following the methodology of Cock et al. [2014] (cited by the
// paper as the empirical basis for time protection): build a channel
// matrix from (input symbol, observed value) pairs, then compute Shannon
// capacity with the Blahut–Arimoto algorithm, alongside a shuffled-label
// noise floor that calibrates the estimator's small-sample bias. A
// channel counts as closed when its capacity does not exceed the floor.
//
// Every estimate also carries a 95% bootstrap confidence interval on the
// capacity (CILow, CIHigh): the observation pairs are resampled with
// replacement bootTrials times and the capacity re-estimated on each
// resample; the interval's percentile bounds quantify how settled the
// point estimate is at the current sample size. The experiment engine's
// adaptive sampler (internal/experiment) keeps adding measurement rounds
// to a cell until this interval's half-width falls under its target.
// Everything — including the bootstrap resampling — is deterministically
// seeded, so an estimate is a pure function of (samples, seed).
package channel

import (
	"fmt"
	"math"
	"sort"

	"timeprot/internal/rng"
)

// EstimatorVersion is the capacity estimator's registered model-version
// string, part of the experiment engine's fingerprint. Bump it when the
// estimate a given sample set produces can change (binning, iteration
// count, floor construction, shuffle derivation, bootstrap design).
// channel/2 added the bootstrap confidence interval to every estimate.
const EstimatorVersion = "channel/2"

// Samples accumulates scalar observations per input symbol.
type Samples struct {
	bySym map[int][]float64
	n     int
}

// NewSamples returns an empty sample set.
func NewSamples() *Samples {
	return &Samples{bySym: make(map[int][]float64)}
}

// Add records one observation of value v while symbol sym was being
// transmitted.
func (s *Samples) Add(sym int, v float64) {
	s.bySym[sym] = append(s.bySym[sym], v)
	s.n++
}

// Reset empties the sample set while retaining allocated capacity, so
// hot loops (the bootstrap's resamples, the floor's shuffles) can reuse
// one set instead of allocating per trial.
func (s *Samples) Reset() {
	for k := range s.bySym {
		s.bySym[k] = s.bySym[k][:0]
	}
	s.n = 0
}

// Len returns the total number of observations.
func (s *Samples) Len() int { return s.n }

// Symbols returns the distinct symbols with observations in ascending
// order. (A Reset set retains its map keys with empty slices; those
// carry no observations and are not distinct symbols.)
func (s *Samples) Symbols() []int {
	syms := make([]int, 0, len(s.bySym))
	for k, vs := range s.bySym {
		if len(vs) > 0 {
			syms = append(syms, k)
		}
	}
	sort.Ints(syms)
	return syms
}

// Pairs flattens the samples into parallel symbol/value slices in
// deterministic order.
func (s *Samples) Pairs() (syms []int, vals []float64) {
	syms = make([]int, 0, s.n)
	vals = make([]float64, 0, s.n)
	for _, sym := range s.Symbols() {
		for _, v := range s.bySym[sym] {
			syms = append(syms, sym)
			vals = append(vals, v)
		}
	}
	return syms, vals
}

// Matrix is a discrete memoryless channel: P[i][j] is the probability of
// observing output j given input symbol i.
type Matrix struct {
	// P is row-stochastic: one row per input symbol.
	P [][]float64
	// Inputs are the input symbols corresponding to rows.
	Inputs []int
	// Outputs is the number of output bins (columns).
	Outputs int
}

// FromPairs builds a channel matrix from discrete (symbol, output) pairs,
// e.g. (transmitted symbol, decoded symbol).
func FromPairs(syms, outs []int) (*Matrix, error) {
	if len(syms) != len(outs) {
		return nil, fmt.Errorf("channel: %d symbols but %d outputs", len(syms), len(outs))
	}
	if len(syms) == 0 {
		return nil, fmt.Errorf("channel: no samples")
	}
	symIdx := indexOf(uniqueInts(syms))
	outIdx := indexOf(uniqueInts(outs))
	counts := make([][]float64, len(symIdx.order))
	for i := range counts {
		counts[i] = make([]float64, len(outIdx.order))
	}
	for k := range syms {
		counts[symIdx.idx[syms[k]]][outIdx.idx[outs[k]]]++
	}
	return normalise(counts, symIdx.order)
}

// FromScalar builds a channel matrix by discretising scalar observations
// into at most maxBins output bins. When the number of distinct values is
// small (the common case for cycle-count observations) each distinct
// value is its own bin; otherwise equal-frequency (quantile) binning is
// used.
func FromScalar(s *Samples, maxBins int) (*Matrix, error) {
	if s.Len() == 0 {
		return nil, fmt.Errorf("channel: no samples")
	}
	if maxBins < 2 {
		maxBins = 2
	}
	_, vals := s.Pairs()
	edges := binEdges(vals, maxBins)
	syms := s.Symbols()
	counts := make([][]float64, len(syms))
	for i, sym := range syms {
		counts[i] = make([]float64, len(edges)+1)
		for _, v := range s.bySym[sym] {
			counts[i][binOf(v, edges)]++
		}
	}
	return normalise(counts, syms)
}

// binEdges returns ascending bin boundaries; value v falls in the first
// bin whose edge exceeds it.
func binEdges(vals []float64, maxBins int) []float64 {
	uniq := append([]float64(nil), vals...)
	sort.Float64s(uniq)
	uniq = dedupFloats(uniq)
	if len(uniq) <= maxBins {
		// Distinct-value bins: edges between consecutive values.
		edges := make([]float64, 0, len(uniq)-1)
		for i := 0; i+1 < len(uniq); i++ {
			edges = append(edges, (uniq[i]+uniq[i+1])/2)
		}
		return edges
	}
	// Quantile bins over the raw (with duplicates) distribution.
	all := append([]float64(nil), vals...)
	sort.Float64s(all)
	edges := make([]float64, 0, maxBins-1)
	for b := 1; b < maxBins; b++ {
		e := all[b*len(all)/maxBins]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	return edges
}

func binOf(v float64, edges []float64) int {
	// Binary search: first edge > v.
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func dedupFloats(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func normalise(counts [][]float64, inputs []int) (*Matrix, error) {
	m := &Matrix{Inputs: inputs}
	for _, row := range counts {
		total := 0.0
		for _, c := range row {
			total += c
		}
		if total == 0 {
			continue // symbol never observed; drop its row
		}
		p := make([]float64, len(row))
		for j, c := range row {
			p[j] = c / total
		}
		m.P = append(m.P, p)
	}
	if len(m.P) == 0 {
		return nil, fmt.Errorf("channel: empty matrix")
	}
	m.Outputs = len(m.P[0])
	return m, nil
}

// MutualInformation computes I(X;Y) in bits for input distribution p
// (nil means uniform).
func (m *Matrix) MutualInformation(p []float64) float64 {
	n := len(m.P)
	if p == nil {
		p = make([]float64, n)
		for i := range p {
			p[i] = 1 / float64(n)
		}
	}
	q := make([]float64, m.Outputs) // output marginal
	for i := range m.P {
		for j, pij := range m.P[i] {
			q[j] += p[i] * pij
		}
	}
	mi := 0.0
	for i := range m.P {
		for j, pij := range m.P[i] {
			if pij > 0 && p[i] > 0 && q[j] > 0 {
				mi += p[i] * pij * math.Log2(pij/q[j])
			}
		}
	}
	if mi < 0 {
		mi = 0 // guard against floating point underflow
	}
	return mi
}

// Capacity computes the Shannon capacity in bits per channel use with the
// Blahut–Arimoto algorithm, to absolute tolerance tol (in bits).
func (m *Matrix) Capacity(maxIter int, tol float64) float64 {
	n := len(m.P)
	if n <= 1 {
		return 0
	}
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	d := make([]float64, n)
	q := make([]float64, m.Outputs)
	for iter := 0; iter < maxIter; iter++ {
		for j := range q {
			q[j] = 0
		}
		for i := range m.P {
			for j, pij := range m.P[i] {
				q[j] += p[i] * pij
			}
		}
		// d_i = D(P_i || q), the per-symbol information gain.
		maxD, avgD := math.Inf(-1), 0.0
		for i := range m.P {
			di := 0.0
			for j, pij := range m.P[i] {
				if pij > 0 && q[j] > 0 {
					di += pij * math.Log2(pij/q[j])
				}
			}
			d[i] = di
			if di > maxD {
				maxD = di
			}
			avgD += p[i] * di
		}
		if maxD-avgD < tol {
			return avgD
		}
		// Multiplicative update p_i <- p_i * 2^{d_i}, normalised.
		total := 0.0
		for i := range p {
			p[i] *= math.Exp2(d[i])
			total += p[i]
		}
		for i := range p {
			p[i] /= total
		}
	}
	return m.MutualInformation(p)
}

// Estimate is a complete capacity measurement.
type Estimate struct {
	// CapacityBits is the Blahut–Arimoto channel capacity.
	CapacityBits float64
	// MIUniform is the mutual information under uniform inputs.
	MIUniform float64
	// FloorBits is the shuffled-label noise floor: the capacity the
	// estimator reports on the same observations with destroyed
	// symbol association. Capacities at or below the floor mean "no
	// channel demonstrated".
	FloorBits float64
	// CILow and CIHigh bound the 95% bootstrap confidence interval on
	// CapacityBits: bootTrials resamples-with-replacement of the
	// observation pairs, capacity re-estimated per resample, percentile
	// bounds taken. The interval quantifies sampling uncertainty only —
	// estimator bias is what FloorBits calibrates.
	CILow, CIHigh float64
	// N is the number of samples.
	N int
	// Bins is the number of output bins used.
	Bins int
}

// CIHalfWidth returns half the width of the capacity confidence
// interval — the adaptive sampler's convergence measure.
func (e Estimate) CIHalfWidth() float64 { return (e.CIHigh - e.CILow) / 2 }

// Leaks reports whether the estimate demonstrates a channel: capacity
// strictly above the noise floor by the given margin (in bits).
func (e Estimate) Leaks(margin float64) bool {
	return e.CapacityBits > e.FloorBits+margin
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("capacity %.4f b/use [%.4f, %.4f] (MI %.4f, floor %.4f, n=%d, bins=%d)",
		e.CapacityBits, e.CILow, e.CIHigh, e.MIUniform, e.FloorBits, e.N, e.Bins)
}

const (
	baIterations = 300
	baTolerance  = 1e-4
	floorTrials  = 10
	// bootTrials is the bootstrap resample count behind CILow/CIHigh.
	// With the 95% order statistics below, the bounds are the 2nd and
	// 39th of 40 sorted resample capacities.
	bootTrials = 40
)

// EstimateScalar measures the channel from scalar observations. It is
// a fresh Estimator's EstimateScalar; hot loops that estimate per cell
// reuse one Estimator instead.
func EstimateScalar(s *Samples, maxBins int, seed uint64) (Estimate, error) {
	var e Estimator
	return e.EstimateScalar(s, maxBins, seed)
}

// EstimatePairs measures the channel from discrete (sent, decoded)
// pairs. It is a fresh Estimator's EstimatePairs; hot loops that
// estimate per cell reuse one Estimator instead.
func EstimatePairs(syms, outs []int, seed uint64) (Estimate, error) {
	var e Estimator
	return e.EstimatePairs(syms, outs, seed)
}

// bootSeed decorrelates the bootstrap's RNG stream from the floor's, so
// adding the interval left every pre-existing estimate field unchanged.
func bootSeed(seed uint64) uint64 { return seed ^ 0xB007_57A9 }

// ciBounds converts sorted resample capacities into the 95% percentile
// interval.
func ciBounds(caps []float64) (lo, hi float64) {
	sort.Float64s(caps)
	n := len(caps)
	return caps[n/40], caps[n-1-n/40]
}

func permute(r *rng.RNG, xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// ErrorRate computes the fraction of decoded symbols differing from the
// transmitted ones.
func ErrorRate(sent, decoded []int) float64 {
	if len(sent) == 0 || len(sent) != len(decoded) {
		return 1
	}
	bad := 0
	for i := range sent {
		if sent[i] != decoded[i] {
			bad++
		}
	}
	return float64(bad) / float64(len(sent))
}

type intIndex struct {
	order []int
	idx   map[int]int
}

func uniqueInts(xs []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func indexOf(order []int) intIndex {
	idx := make(map[int]int, len(order))
	for i, v := range order {
		idx[v] = i
	}
	return intIndex{order: order, idx: idx}
}
