package channel

import (
	"math"
	"testing"
	"testing/quick"

	"timeprot/internal/rng"
)

func TestPerfectBinaryChannelCapacityIsOneBit(t *testing.T) {
	var syms, outs []int
	for i := 0; i < 200; i++ {
		syms = append(syms, i%2)
		outs = append(outs, i%2)
	}
	m, err := FromPairs(syms, outs)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Capacity(300, 1e-6)
	if math.Abs(c-1) > 1e-3 {
		t.Fatalf("capacity = %f, want 1", c)
	}
}

func TestUselessChannelCapacityZero(t *testing.T) {
	var syms, outs []int
	for i := 0; i < 400; i++ {
		syms = append(syms, i%2)
		outs = append(outs, (i/2)%2) // independent of syms
	}
	m, err := FromPairs(syms, outs)
	if err != nil {
		t.Fatal(err)
	}
	if c := m.Capacity(300, 1e-6); c > 1e-6 {
		t.Fatalf("capacity = %g, want ~0", c)
	}
}

func TestBSCCapacityMatchesFormula(t *testing.T) {
	// Binary symmetric channel with crossover eps:
	// C = 1 - H(eps).
	eps := 0.11
	m := &Matrix{
		P:       [][]float64{{1 - eps, eps}, {eps, 1 - eps}},
		Inputs:  []int{0, 1},
		Outputs: 2,
	}
	want := 1 + eps*math.Log2(eps) + (1-eps)*math.Log2(1-eps)
	got := m.Capacity(500, 1e-9)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("BSC capacity = %.8f, want %.8f", got, want)
	}
}

func TestZChannelCapacityExceedsUniformMI(t *testing.T) {
	// For asymmetric channels the optimal input is non-uniform, so
	// Blahut-Arimoto must beat uniform-input MI.
	m := &Matrix{
		P:       [][]float64{{1, 0}, {0.5, 0.5}},
		Inputs:  []int{0, 1},
		Outputs: 2,
	}
	mi := m.MutualInformation(nil)
	c := m.Capacity(500, 1e-9)
	if c <= mi {
		t.Fatalf("capacity %f should exceed uniform MI %f", c, mi)
	}
	// Known Z-channel capacity: log2(1 + (1-eps) * eps^{eps/(1-eps)})
	// with eps = 0.5 -> log2(1+0.5*0.5) = log2(1.25).
	want := math.Log2(1.25)
	if math.Abs(c-want) > 1e-4 {
		t.Fatalf("Z-channel capacity = %f, want %f", c, want)
	}
}

func TestScalarDistinctValueBinning(t *testing.T) {
	s := NewSamples()
	for i := 0; i < 100; i++ {
		s.Add(0, 4)   // fast hits
		s.Add(1, 200) // slow misses
	}
	m, err := FromScalar(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Outputs != 2 {
		t.Fatalf("bins = %d, want 2 distinct-value bins", m.Outputs)
	}
	if c := m.Capacity(300, 1e-6); math.Abs(c-1) > 1e-3 {
		t.Fatalf("capacity = %f, want 1", c)
	}
}

func TestScalarQuantileBinningManyValues(t *testing.T) {
	s := NewSamples()
	r := rng.New(5)
	for i := 0; i < 2000; i++ {
		sym := i % 2
		v := float64(r.Intn(100))
		if sym == 1 {
			v += 100 // disjoint support: perfectly distinguishable
		}
		s.Add(sym, v)
	}
	est, err := EstimateScalar(s, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if est.CapacityBits < 0.9 {
		t.Fatalf("capacity = %f, want ~1", est.CapacityBits)
	}
	if !est.Leaks(0.1) {
		t.Fatalf("clearly leaking channel not detected: %v", est)
	}
}

func TestNoiseFloorCalibratesNoChannel(t *testing.T) {
	// Observations independent of symbols: capacity estimate must not
	// exceed the shuffled floor by any real margin.
	s := NewSamples()
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		s.Add(i%2, float64(r.Intn(50)))
	}
	est, err := EstimateScalar(s, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if est.Leaks(0.05) {
		t.Fatalf("no-channel data reported as leaking: %v", est)
	}
}

func TestEstimatePairsFloor(t *testing.T) {
	r := rng.New(11)
	var syms, outs []int
	for i := 0; i < 1000; i++ {
		syms = append(syms, i%4)
		outs = append(outs, r.Intn(4))
	}
	est, err := EstimatePairs(syms, outs, 17)
	if err != nil {
		t.Fatal(err)
	}
	if est.Leaks(0.05) {
		t.Fatalf("independent pairs reported as leaking: %v", est)
	}
}

func TestErrorRate(t *testing.T) {
	if got := ErrorRate([]int{1, 2, 3, 4}, []int{1, 2, 0, 0}); got != 0.5 {
		t.Fatalf("error rate %f, want 0.5", got)
	}
	if got := ErrorRate(nil, nil); got != 1 {
		t.Fatalf("empty error rate %f, want 1 (no information)", got)
	}
	if got := ErrorRate([]int{1}, []int{1, 2}); got != 1 {
		t.Fatalf("mismatched lengths must yield 1, got %f", got)
	}
}

func TestFromPairsValidation(t *testing.T) {
	if _, err := FromPairs([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromPairs(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMutualInformationNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, k := 2+r.Intn(4), 2+r.Intn(5)
		m := &Matrix{Outputs: k}
		for i := 0; i < n; i++ {
			row := make([]float64, k)
			total := 0.0
			for j := range row {
				row[j] = r.Float64() + 1e-9
				total += row[j]
			}
			for j := range row {
				row[j] /= total
			}
			m.P = append(m.P, row)
			m.Inputs = append(m.Inputs, i)
		}
		mi := m.MutualInformation(nil)
		cap := m.Capacity(200, 1e-6)
		// 0 <= MI <= C <= log2(min(n, k)) (+ small numerical slack)
		limit := math.Log2(math.Min(float64(n), float64(k)))
		return mi >= 0 && cap >= mi-1e-6 && cap <= limit+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSamplesAccessors(t *testing.T) {
	s := NewSamples()
	s.Add(3, 1.0)
	s.Add(1, 2.0)
	s.Add(3, 3.0)
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	syms := s.Symbols()
	if len(syms) != 2 || syms[0] != 1 || syms[1] != 3 {
		t.Fatalf("symbols %v", syms)
	}
	ps, vs := s.Pairs()
	if len(ps) != 3 || ps[0] != 1 || vs[0] != 2.0 {
		t.Fatalf("pairs %v %v", ps, vs)
	}
}

func TestEstimateStringer(t *testing.T) {
	e := Estimate{CapacityBits: 0.5, MIUniform: 0.4, FloorBits: 0.01, N: 100, Bins: 4}
	if e.String() == "" {
		t.Fatal("empty string")
	}
}
