package channel

import (
	"math"
	"testing"

	"timeprot/internal/rng"
)

// Bootstrap-CI tests on synthetic channels with known capacity: the
// interval must be deterministic, tight and correctly placed on clean
// channels, and must narrow as the sample grows on noisy ones.

// perfectPairs builds n noiseless binary transmissions.
func perfectPairs(n int) (syms, outs []int) {
	for i := 0; i < n; i++ {
		syms = append(syms, i%2)
		outs = append(outs, i%2)
	}
	return syms, outs
}

func TestBootstrapCIPerfectChannel(t *testing.T) {
	syms, outs := perfectPairs(120)
	est, err := EstimatePairs(syms, outs, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A noiseless binary channel resamples to capacity 1 every time
	// (both symbols present in essentially every resample), so the
	// interval collapses onto the point estimate.
	if est.CapacityBits < 0.999 {
		t.Fatalf("perfect channel capacity %f, want ~1", est.CapacityBits)
	}
	if est.CILow > est.CapacityBits || est.CIHigh < est.CapacityBits {
		t.Errorf("CI [%f, %f] does not contain the capacity %f", est.CILow, est.CIHigh, est.CapacityBits)
	}
	if est.CIHalfWidth() > 0.05 {
		t.Errorf("perfect channel CI too wide: [%f, %f]", est.CILow, est.CIHigh)
	}
}

func TestBootstrapCICleanScalarChannel(t *testing.T) {
	// Two symbols with fully separated scalar observations: capacity 1,
	// tight interval containing it.
	s := NewSamples()
	for i := 0; i < 60; i++ {
		s.Add(0, 100)
		s.Add(1, 200)
	}
	est, err := EstimateScalar(s, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if est.CapacityBits < 0.999 {
		t.Fatalf("separated scalar channel capacity %f, want ~1", est.CapacityBits)
	}
	if est.CILow > est.CapacityBits || est.CIHigh < est.CapacityBits {
		t.Errorf("CI [%f, %f] does not contain the capacity %f", est.CILow, est.CIHigh, est.CapacityBits)
	}
	if est.CIHalfWidth() > 0.05 {
		t.Errorf("clean channel CI too wide: [%f, %f]", est.CILow, est.CIHigh)
	}
}

// bscPairs builds a binary symmetric channel with crossover p —
// capacity 1 - H(p), known in closed form.
func bscPairs(n int, p float64, seed uint64) (syms, outs []int) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		sym := i % 2
		out := sym
		if r.Float64() < p {
			out = 1 - sym
		}
		syms = append(syms, sym)
		outs = append(outs, out)
	}
	return syms, outs
}

func TestBootstrapCINarrowsWithSamples(t *testing.T) {
	small, smallOut := bscPairs(40, 0.25, 3)
	large, largeOut := bscPairs(640, 0.25, 3)
	se, err := EstimatePairs(small, smallOut, 5)
	if err != nil {
		t.Fatal(err)
	}
	le, err := EstimatePairs(large, largeOut, 5)
	if err != nil {
		t.Fatal(err)
	}
	if le.CIHalfWidth() >= se.CIHalfWidth() {
		t.Errorf("CI did not narrow with sample size: n=40 half-width %f, n=640 half-width %f",
			se.CIHalfWidth(), le.CIHalfWidth())
	}
	// At 640 samples the interval must bracket the analytic capacity
	// 1 - H(0.25) ~ 0.1887 within the estimator's small-sample bias.
	h := func(p float64) float64 { return -p*math.Log2(p) - (1-p)*math.Log2(1-p) }
	want := 1 - h(0.25)
	if le.CIHigh < want-0.1 || le.CILow > want+0.1 {
		t.Errorf("large-sample CI [%f, %f] far from analytic capacity %f", le.CILow, le.CIHigh, want)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	syms, outs := bscPairs(100, 0.2, 9)
	a, err := EstimatePairs(syms, outs, 21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimatePairs(syms, outs, 21)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("estimate not deterministic:\n%+v\n%+v", a, b)
	}
	s := NewSamples()
	for i := range syms {
		s.Add(syms[i], float64(outs[i]))
	}
	c, err := EstimateScalar(s, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	d, err := EstimateScalar(s, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	if c != d {
		t.Errorf("scalar estimate not deterministic:\n%+v\n%+v", c, d)
	}
	if c.CILow > c.CIHigh {
		t.Errorf("inverted interval: [%f, %f]", c.CILow, c.CIHigh)
	}
}

// TestBootstrapDidNotPerturbEstimates pins the estimator-compatibility
// guarantee of channel/2: adding the interval must not have changed any
// pre-existing field, because the bootstrap draws from its own
// decorrelated RNG stream.
func TestBootstrapDidNotPerturbEstimates(t *testing.T) {
	syms, outs := bscPairs(200, 0.1, 5)
	est, err := EstimatePairs(syms, outs, 13)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromPairs(syms, outs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Capacity(baIterations, baTolerance); got != est.CapacityBits {
		t.Errorf("capacity perturbed: %f vs %f", got, est.CapacityBits)
	}
	if got := m.MutualInformation(nil); got != est.MIUniform {
		t.Errorf("MI perturbed: %f vs %f", got, est.MIUniform)
	}
}
