package trace

import "testing"

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Append(Event{Kind: Flush})
	if l.Len() != 0 || l.Events() != nil || l.Filter(Flush) != nil {
		t.Fatal("nil log must behave as empty")
	}
	l.Reset() // must not panic
}

func TestAppendAndFilter(t *testing.T) {
	l := NewLog()
	l.Append(Event{Kind: SwitchStart, Cycle: 1})
	l.Append(Event{Kind: Flush, Cycle: 2, Dirty: 5})
	l.Append(Event{Kind: SwitchEnd, Cycle: 3})
	l.Append(Event{Kind: Flush, Cycle: 4, Dirty: 7})
	if l.Len() != 4 {
		t.Fatalf("len = %d", l.Len())
	}
	fl := l.Filter(Flush)
	if len(fl) != 2 || fl[0].Dirty != 5 || fl[1].Dirty != 7 {
		t.Fatalf("filter = %+v", fl)
	}
	if got := l.Events()[0].Kind; got != SwitchStart {
		t.Fatalf("first event %v", got)
	}
}

func TestReset(t *testing.T) {
	l := NewLog()
	l.Append(Event{Kind: IRQDeliver})
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset must clear")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{SwitchStart, Flush, SwitchEnd, SliceStart, KernelEntry, IRQDeliver, IPCDeliver, PadOverrun, ThreadExit}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}
