// Package trace records the kernel-level events that the invariant
// checkers (internal/prove/invariant) consume: domain switches with their
// timestamps, flushes with their dirty counts, interrupt deliveries, and
// IPC deliveries.
//
// The paper reduces padding correctness to "simply comparing time stamps"
// (§5); the trace is where those timestamps live.
package trace

import (
	"fmt"

	"timeprot/internal/hw"
)

// Kind enumerates event types.
type Kind int

const (
	// SwitchStart marks kernel entry for a domain switch.
	SwitchStart Kind = iota
	// Flush marks the core-local flush during a switch.
	Flush
	// SwitchEnd marks dispatch of the next domain.
	SwitchEnd
	// SliceStart marks the beginning of a domain's time slice.
	SliceStart
	// KernelEntry marks a trap (syscall) entry.
	KernelEntry
	// IRQDeliver marks delivery of a device interrupt to a core.
	IRQDeliver
	// IPCDeliver marks a cross-domain message becoming visible.
	IPCDeliver
	// PadOverrun marks a padding target that had already passed —
	// evidence the configured pad (or MinDelivery) was insufficient.
	PadOverrun
	// ThreadExit marks a thread finishing.
	ThreadExit
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SwitchStart:
		return "switch-start"
	case Flush:
		return "flush"
	case SwitchEnd:
		return "switch-end"
	case SliceStart:
		return "slice-start"
	case KernelEntry:
		return "kernel-entry"
	case IRQDeliver:
		return "irq-deliver"
	case IPCDeliver:
		return "ipc-deliver"
	case PadOverrun:
		return "pad-overrun"
	case ThreadExit:
		return "thread-exit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one trace record. Field use depends on Kind; unused fields
// are zero.
type Event struct {
	Kind Kind
	// CPU is the logical CPU the event occurred on.
	CPU int
	// Cycle is the core-clock timestamp.
	Cycle uint64
	// From and To are the domains involved (switches, IPC).
	From, To hw.DomainID
	// Dirty is the dirty-line count of a flush.
	Dirty int
	// Latency is the event's cost in cycles (flush latency, padding
	// amount for SwitchEnd, delivery delay for IPCDeliver).
	Latency uint64
	// Aux carries kind-specific data: IRQ line for IRQDeliver, raise
	// timestamp for IRQDeliver (see AuxCycle), endpoint ID for
	// IPCDeliver, trap number for KernelEntry, slice-start timestamp
	// for SwitchStart/SwitchEnd.
	Aux int
	// AuxCycle carries a secondary timestamp: for SwitchStart and
	// SwitchEnd the slice start; for IRQDeliver the raise time; for
	// IPCDeliver the send time.
	AuxCycle uint64
}

// Log is an append-only event log. A nil *Log is a valid, disabled log,
// so recording sites need no conditionals.
type Log struct {
	events []Event
}

// NewLog returns an empty enabled log.
func NewLog() *Log { return &Log{} }

// Append records an event. Appending to a nil log is a no-op.
func (l *Log) Append(e Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, e)
}

// Append2 records two consecutive events with a single append — one
// capacity check and at most one growth step for the pair. The kernel's
// domain-switch protocol emits its SwitchEnd/SliceStart pair through
// this. Appending to a nil log is a no-op.
func (l *Log) Append2(a, b Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, a, b)
}

// Events returns the recorded events in order. The caller must not
// mutate the returned slice.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Filter returns the events of one kind, in order.
func (l *Log) Filter(k Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// FilterInto appends the events of one kind to dst (which may be an
// emptied scratch slice) and returns it — the allocation-disciplined
// variant of Filter for callers that scan a log repeatedly.
func (l *Log) FilterInto(dst []Event, k Kind) []Event {
	if l == nil {
		return dst
	}
	for _, e := range l.events {
		if e.Kind == k {
			dst = append(dst, e)
		}
	}
	return dst
}

// Reset discards all events.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.events = l.events[:0]
}
