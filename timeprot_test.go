package timeprot

import (
	"testing"
)

func TestPublicAPISystemLifecycle(t *testing.T) {
	pcfg := DefaultPlatform()
	pcfg.Cores = 1
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: FullProtection(),
		Domains: []DomainSpec{
			{Name: "Hi", SliceCycles: 20_000, PadCycles: 8_000, Colors: ColorRange(1, 32), CodePages: 2, HeapPages: 4},
			{Name: "Lo", SliceCycles: 20_000, PadCycles: 8_000, Colors: ColorRange(32, 64), CodePages: 2, HeapPages: 4},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fm := NewFlushMonitor(sys)
	for d, name := range map[int]string{0: "hi", 1: "lo"} {
		if _, err := sys.Spawn(d, name, 0, func(c *UserCtx) {
			for i := uint64(0); i < 400; i++ {
				c.WriteHeap((i * 64) % c.HeapBytes())
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 || rep.Deadlocked {
		t.Fatalf("bad run: %+v", rep)
	}
	inv := CheckInvariants(sys, fm)
	if !inv.Pass() {
		t.Fatalf("invariants failed:\n%s", inv)
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := RunExperiment("T99", 10, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentKnownIDs(t *testing.T) {
	// Just T4 (fast) to validate the dispatch plumbing; the full set
	// runs in internal/attacks and in the benchmarks.
	e, err := RunExperiment("T4", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "T4" || len(e.Rows) != 2 {
		t.Fatalf("experiment shape: %+v", e)
	}
}

func TestProofMatrixShape(t *testing.T) {
	m := ProofMatrix(1, 10, 7)
	if len(m) != 7 {
		t.Fatalf("matrix rows = %d, want 7", len(m))
	}
	if !m[0].Report.Proved() {
		t.Fatalf("full protection must prove:\n%s", m[0].Report)
	}
	for _, row := range m[1:] {
		if row.Report.Proved() {
			t.Errorf("ablation %q must not prove", row.Name)
		}
	}
}

func TestContractSurface(t *testing.T) {
	r := CheckContract(FullProtection(), DefaultPlatform())
	if !r.Satisfied() {
		t.Fatalf("default contract unsatisfied:\n%s", r)
	}
	bad := FullProtection()
	bad.PadSwitch = false
	if CheckContract(bad, DefaultPlatform()).Satisfied() {
		t.Fatal("flush-without-pad must violate the contract")
	}
}
