// Downgrader: the paper's Figure 1 end-to-end, with all three of its
// boxes as separate security domains. A web server (Hi) holds secrets
// and hands them to an encryption component (Hi, the downgrader), which
// publishes ciphertext to a network stack (Lo) through a sanctioned IPC
// channel. The ciphertext itself is fine — but WHEN it arrives leaks the
// secret if the crypto computation is secret-dependent (§3.2, an
// algorithmic channel). Deterministic minimum-time delivery (the Cock et
// al. model) plus padded domain switches close the channel.
//
// The example runs each configuration with two DIFFERENT secret streams
// and compares the network stack's arrival intervals: noninterference
// means the intervals are identical no matter the secrets.
package main

import (
	"fmt"
	"log"

	"timeprot"
)

// runScenario executes the Fig.-1 pipeline with the given protection and
// secret stream and returns per-message (secret, inter-arrival) pairs.
func runScenario(prot timeprot.Config, minDelivery uint64, secrets []int) []pair {
	pcfg := timeprot.DefaultPlatform()
	pcfg.Cores = 1
	sys, err := timeprot.NewSystem(timeprot.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []timeprot.DomainSpec{
			{Name: "Web", SliceCycles: 30_000, PadCycles: 10_000, Colors: timeprot.ColorRange(1, 20), CodePages: 4, HeapPages: 8},
			{Name: "Crypto", SliceCycles: 30_000, PadCycles: 10_000, Colors: timeprot.ColorRange(20, 40), CodePages: 4, HeapPages: 8},
			{Name: "Net", SliceCycles: 30_000, PadCycles: 10_000, Colors: timeprot.ColorRange(40, 64), CodePages: 4, HeapPages: 8},
		},
		Schedule: [][]int{{0, 1, 2}},
		Endpoints: []timeprot.EndpointSpec{
			{ID: 0},                           // Web -> Crypto (intra-Hi flow, unrestricted)
			{ID: 1, MinDelivery: minDelivery}, // Crypto -> Net: the downgrader edge
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Web server (Hi): produces the plaintext secrets.
	if _, err := sys.Spawn(0, "web", 0, func(c *timeprot.UserCtx) {
		for _, s := range secrets {
			c.Compute(1_000)
			c.Send(0, uint64(s))
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Encryption component (Hi): per message, "encryption" whose run
	// time depends on the secret — an algorithmic channel — then
	// publish the ciphertext to the network stack.
	if _, err := sys.Spawn(1, "crypto", 0, func(c *timeprot.UserCtx) {
		for range secrets {
			s, _ := c.Recv(0)
			work := 8_000 + s*12_000
			for done := uint64(0); done < work; done += 500 {
				c.Compute(500)
			}
			c.Send(1, s) // "ciphertext": payload is ground truth only
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Network stack (Lo): receive each ciphertext and timestamp it.
	var out []pair
	if _, err := sys.Spawn(2, "net", 0, func(c *timeprot.UserCtx) {
		prev := uint64(0)
		for range secrets {
			v, at := c.Recv(1)
			if prev != 0 {
				out = append(out, pair{secret: int(v), delta: at - prev})
			}
			prev = at
		}
	}); err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	return out
}

type pair struct {
	secret int
	delta  uint64
}

// show prints two runs with different secret streams side by side: the
// noninterference question is whether the arrival intervals differ.
func show(title string, a, b []pair) {
	fmt.Printf("%s\n", title)
	fmt.Printf("  %-10s %-14s | %-10s %-14s\n", "secret A", "interval A", "secret B", "interval B")
	same := len(a) == len(b)
	for i := range a {
		if i >= len(b) {
			break
		}
		fmt.Printf("  %-10d %-14d | %-10d %-14d\n", a[i].secret, a[i].delta, b[i].secret, b[i].delta)
		if a[i].delta != b[i].delta {
			same = false
		}
	}
	if same {
		fmt.Println("  -> intervals IDENTICAL despite different secrets: nothing leaks")
	} else {
		fmt.Println("  -> intervals TRACK the secrets: the timing channel is open")
	}
	fmt.Println()
}

func main() {
	fmt.Println("Figure 1: web server -> encryption -> network stack")
	fmt.Println()
	secretsA := []int{3, 0, 2, 1, 3, 3, 0, 1, 2, 0}
	secretsB := []int{0, 3, 1, 2, 0, 1, 3, 2, 0, 3}

	show("UNPROTECTED:",
		runScenario(timeprot.NoProtection(), 0, secretsA),
		runScenario(timeprot.NoProtection(), 0, secretsB))

	show("PROTECTED (padded switches + deterministic delivery):",
		runScenario(timeprot.FullProtection(), 300_000, secretsA),
		runScenario(timeprot.FullProtection(), 300_000, secretsB))

	fmt.Println("The Web->Crypto edge is intra-Hi and unrestricted (§2); only the")
	fmt.Println("Crypto->Net edge crosses the security boundary and is gated to a")
	fmt.Println("fixed delivery cadence chosen by the system designer (>= the crypto")
	fmt.Println("WCET; the kernel flags overruns). Mechanism is the kernel's; policy —")
	fmt.Println("the delivery period — is the designer's (§3.2).")
}
