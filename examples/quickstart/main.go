// Quickstart: build a two-domain protected system, run workloads in both
// domains, observe cache-mediated latencies, and verify the
// time-protection invariants over the completed run.
package main

import (
	"fmt"
	"log"

	"timeprot"
)

func main() {
	pcfg := timeprot.DefaultPlatform()
	pcfg.Cores = 1

	sys, err := timeprot.NewSystem(timeprot.SystemConfig{
		Platform:   pcfg,
		Protection: timeprot.FullProtection(),
		Domains: []timeprot.DomainSpec{
			// Colour 0 is reserved for kernel global data; the two
			// domains split the remaining 63 LLC colours.
			{Name: "Hi", SliceCycles: 50_000, PadCycles: 15_000, Colors: timeprot.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: 50_000, PadCycles: 15_000, Colors: timeprot.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}}, // round-robin on CPU 0
		EnableTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Install the flush-invariant monitor before running.
	fm := timeprot.NewFlushMonitor(sys)

	// Hi: a busy secret-processing workload with phase-varying cache
	// dirtiness (the padded switch must hide the variation).
	if _, err := sys.Spawn(0, "hi-worker", 0, func(c *timeprot.UserCtx) {
		for round := uint64(0); round < 24; round++ {
			n := 20 + (round%4)*200
			for i := uint64(0); i < n; i++ {
				c.WriteHeap((i * 64) % c.HeapBytes())
			}
			for i := 0; i < 120; i++ {
				c.Compute(150)
			}
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Lo: observes its own memory latencies — all an attacker has.
	if _, err := sys.Spawn(1, "lo-observer", 0, func(c *timeprot.UserCtx) {
		cold := c.ReadHeap(0)
		hot := c.ReadHeap(0)
		fmt.Printf("lo: cold read %d cycles, hot read %d cycles (the timing signal attacks exploit)\n", cold, hot)
		for i := uint64(0); i < 8000; i++ {
			c.ReadHeap((i * 128) % c.HeapBytes())
		}
	}); err != nil {
		log.Fatal(err)
	}

	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run complete: %d cycles on CPU 0, %d domain switches\n", rep.CPUCycles[0], rep.Switches)

	// Verify the functional properties time protection reduces to (§5).
	inv := timeprot.CheckInvariants(sys, fm)
	fmt.Print(inv)
	if inv.Pass() {
		fmt.Println("all time-protection invariants hold.")
	}
}
