// Prover: the paper's §5 programme, executed. Time protection is proved
// over the abstract partitionable/flushable hardware model — without any
// knowledge of concrete instruction latencies — and each mechanism's
// removal is refuted with a concrete counterexample trace.
package main

import (
	"fmt"

	"timeprot"
)

func main() {
	fmt.Println("Can we prove time protection? — running the §5 proof obligations")
	fmt.Println()
	fmt.Println("The machine model: every microarchitectural resource is partitionable")
	fmt.Println("(LLC by colour, kernel text by cloning) or flushable (L1/TLB/BP);")
	fmt.Println("time advances by a deterministic but UNSPECIFIED function of the")
	fmt.Println("visible state — sampled afresh for every proof run (§5.1).")
	fmt.Println()

	matrix := timeprot.ProofMatrix(4, 150, 2026)

	for _, row := range matrix {
		if row.Report.Proved() {
			fmt.Printf("== %-18s PROVED\n", row.Name)
		} else {
			fmt.Printf("== %-18s REFUTED\n", row.Name)
		}
		fmt.Print(row.Report)
		fmt.Println()
	}

	fmt.Println("Reading the table: with everything armed, the §5.2 case analysis holds —")
	fmt.Println("user steps (Case 1) and kernel entries (Case 2a) read only partitioned or")
	fmt.Println("freshly-flushed state, and the switch (Case 2b) erases all transient")
	fmt.Println("divergence under the pad. Remove any one mechanism and exactly that case")
	fmt.Println("collapses, with a two-run counterexample to show for it. Timing-channel")
	fmt.Println("reasoning has been reduced to functional properties of spatial resources —")
	fmt.Println("\"transmuted into reasoning about storage channels\" (§5.2).")
}
