// Prime-and-probe: the cache covert channel of §3.1, shown bit by bit.
//
// A Trojan in the Hi domain transmits a message by touching one of four
// L1 cache-set groups per time slice; a spy in the Lo domain primes the
// cache and decodes each symbol from which group probes slowly. The
// example runs the attack against an unprotected kernel (message comes
// through) and a protected one (decoder output is noise), printing the
// decoded stream next to the transmitted one.
package main

import (
	"fmt"
	"log"

	"timeprot"
)

const (
	groups       = 4
	setsPerGroup = 16
	pageBytes    = 4096
	lineBytes    = 64
)

// message is what the Trojan exfiltrates, two bits per slice.
var message = []int{2, 1, 3, 0, 0, 3, 1, 2, 2, 0, 1, 3, 3, 1, 0, 2}

func run(prot timeprot.Config) []int {
	pcfg := timeprot.DefaultPlatform()
	pcfg.Cores = 1
	sys, err := timeprot.NewSystem(timeprot.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []timeprot.DomainSpec{
			{Name: "Hi", SliceCycles: 100_000, PadCycles: 25_000, Colors: timeprot.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: 100_000, PadCycles: 25_000, Colors: timeprot.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule: [][]int{{0, 1}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// spin burns the rest of a slice without touching the data cache.
	spin := func(c *timeprot.UserCtx, e uint64) uint64 {
		for {
			if n := c.Epoch(); n != e {
				return n
			}
			c.Compute(180)
		}
	}

	// Trojan: per slice, fill every way of every set in group m. The
	// first slice is left idle so the spy's initial prime lands before
	// the first symbol.
	if _, err := sys.Spawn(0, "trojan", 0, func(c *timeprot.UserCtx) {
		e := c.Epoch()
		e = spin(c, e)
		for _, m := range message {
			for pg := 0; pg < 8; pg++ { // 8 ways
				for s := 0; s < setsPerGroup; s++ {
					set := m*setsPerGroup + s
					c.ReadHeap(uint64(pg*pageBytes + set*lineBytes))
				}
			}
			e = spin(c, e)
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Spy: probe all groups at slice start; slowest group = symbol.
	var decoded []int
	if _, err := sys.Spawn(1, "spy", 0, func(c *timeprot.UserCtx) {
		probe := func() int {
			best, bestLat := 0, uint64(0)
			for g := 0; g < groups; g++ {
				var lat uint64
				for pg := 0; pg < 2; pg++ { // prime 2 ways
					for s := 0; s < setsPerGroup; s++ {
						set := g*setsPerGroup + s
						lat += c.ReadHeap(uint64(pg*pageBytes + set*lineBytes))
					}
				}
				if lat > bestLat {
					bestLat, best = lat, g
				}
			}
			return best
		}
		probe() // initial prime
		e := c.Epoch()
		e = spin(c, e)
		for range message {
			decoded = append(decoded, probe())
			e = spin(c, e)
		}
	}); err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	return decoded
}

func score(dec []int) int {
	ok := 0
	for i := range dec {
		if i < len(message) && dec[i] == message[i] {
			ok++
		}
	}
	return ok
}

func main() {
	fmt.Println("prime-and-probe covert channel through the L1-D cache (§3.1)")
	fmt.Printf("transmitted:  %v\n\n", message)

	dec := run(timeprot.NoProtection())
	fmt.Printf("UNPROTECTED decoded: %v  (%d/%d correct)\n", dec, score(dec), len(message))

	dec = run(timeprot.FullProtection())
	fmt.Printf("PROTECTED   decoded: %v  (%d/%d correct — chance is %d)\n",
		dec, score(dec), len(message), len(message)/groups)

	fmt.Println("\nFlushing on domain switch resets the L1 to a defined state, so the")
	fmt.Println("spy's probe sees uniform misses whatever the Trojan did (§4.1/§4.2).")
}
