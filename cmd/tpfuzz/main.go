// Command tpfuzz runs the coverage-guided channel-discovery fuzzer:
// generative search for timing channels over the flush/pad/partition
// ablation surface. Starting from a seed corpus of trojan/spy program
// pairs, it mutates energy-selected parents, measures each candidate on
// the concrete simulator with CI-backed capacity estimates, and takes
// coverage feedback from a bitmap over microarchitectural state
// transitions. A candidate becomes a discovery when its leak replicates
// under independent reseeds AND full protection closes it; the witness
// is then shrunk until every remaining action is load-bearing. A leak
// that survives full protection while the abstract prover accepts the
// pair is reported as a soundness violation and the run exits non-zero.
//
// The campaign is deterministic: the discovery set is a pure function
// of (-seed, -budget, -rounds, -families, corpus). -parallel and store
// temperature never change a bit of it. With -store, candidate
// measurements are cached under the discover/1 keyspace, so re-running
// a campaign is warm. -shard is not meaningful for a feedback-driven
// search and is rejected.
//
// All timing goes to stderr; stdout, -out, and -md are pure functions
// of the campaign, so outputs regenerate byte-stably.
//
// Usage:
//
//	tpfuzz [-seed S] [-budget N] [-rounds R] [-parallel P] [-families F]
//	       [-corpus DIR] [-store DIR] [-merge-from DIR,...] [-warm-only]
//	       [-out discoveries.json] [-md DISCOVERIES.md] [-quiet]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"timeprot"
	"timeprot/internal/cliutil"
	"timeprot/internal/discover"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpfuzz: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	seed := flag.Uint64("seed", 42, "campaign seed; drives mutation, ablation choice, and measurement seeds")
	budget := flag.Int("budget", 24, "candidate screening evaluations to spend (the default matches the pinned regression campaign)")
	rounds := flag.Int("rounds", 24, "concrete transmission rounds per measurement")
	parallel := flag.Int("parallel", 0, "evaluation worker count (0 = 1); never affects results")
	families := flag.Int("families", 0, "sampled time-function families for the abstract soundness cross-check (0 = default)")
	corpus := flag.String("corpus", "", "seed corpus directory of *.json pair files (default: built-in corpus)")
	sf := cliutil.RegisterStore(flag.CommandLine, "discovery evaluation")
	out := flag.String("out", "", "write the discoveries as JSON to this path")
	md := flag.String("md", "", "write the discoveries as DISCOVERIES.md to this path")
	quiet := flag.Bool("quiet", false, "suppress the text report on stdout")
	flag.Parse()

	if sf.Shard != "" {
		fail("-shard is not supported: a feedback-driven search has no precomputable matrix to partition")
	}

	opt := timeprot.FuzzOptions{
		Seed:     *seed,
		Budget:   *budget,
		Rounds:   *rounds,
		Workers:  *parallel,
		Families: *families,
		Corpus:   discover.DefaultCorpus(),
	}
	if *corpus != "" {
		pairs, err := discover.LoadCorpus(*corpus)
		if err != nil {
			fail("%v", err)
		}
		opt.Corpus = pairs
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	st, _, err := sf.Resolve(logf)
	if err != nil {
		fail("%v", err)
	}
	opt.Store = st

	start := time.Now()
	res, err := timeprot.Fuzz(opt)
	if err != nil {
		fail("%v", err)
	}
	// Close before the os.Exit paths below so the packed backend's index
	// sidecar and final sync are persisted.
	if st != nil {
		if cerr := st.Close(); cerr != nil {
			fail("closing store: %v", cerr)
		}
	}

	if !*quiet {
		if err := timeprot.WriteFuzzReport(os.Stdout, res); err != nil {
			fail("%v", err)
		}
		// Timing is diagnostic only and must never enter a report
		// stream: stdout stays a pure function of the campaign.
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "fuzzed %d candidate pairs in %.1fs (fuzz_pairs_per_sec %.2f)\n",
			res.Evals, elapsed, float64(res.Evals)/elapsed)
		if sf.Dir != "" {
			fmt.Fprintf(os.Stderr, "store: %d measurements cached, %d simulated\n",
				res.CacheHits, res.ColdMisses)
		}
	}
	if sf.WarmOnly && res.ColdMisses > 0 {
		fail("-warm-only: %d measurements were not served from the store", res.ColdMisses)
	}

	if *out != "" {
		data, err := json.MarshalIndent(res.Discoveries, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
		logf("wrote %s", *out)
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fail("%v", err)
		}
		if err := timeprot.WriteDiscoveriesMD(f, res.Discoveries); err != nil {
			fail("writing %s: %v", *md, err)
		}
		if err := f.Close(); err != nil {
			fail("closing %s: %v", *md, err)
		}
		logf("wrote %s", *md)
	}

	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "tpfuzz: SOUNDNESS VIOLATION: pair %v / %v via %s (seed %d)\n",
				v.HiA, v.HiB, v.Channel, v.Seed)
		}
		os.Exit(1)
	}
}
