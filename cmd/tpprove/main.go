// Command tpprove runs the paper's headline result (experiment T1): the
// machine-checked proof of time protection over the abstract
// partitionable/flushable hardware model, and its refutation under every
// single-mechanism ablation.
//
// For each configuration it reports the §5.2 case-analysis verdicts
// (Case 1: user steps; Case 2a: kernel entries; Case 2b: the padded
// switch; plus interrupt partitioning and SMT), and the exhaustive
// bounded noninterference check over sampled time-function families.
//
// Usage:
//
//	tpprove [-families N] [-random N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"time"

	"timeprot"
)

func main() {
	families := flag.Int("families", 5, "sampled time-function families per configuration")
	random := flag.Int("random", 200, "extra random Hi programs beyond the exhaustive slice set")
	seed := flag.Uint64("seed", 2026, "base seed for function-family sampling")
	flag.Parse()

	fmt.Println("T1 — proving time protection over the abstract model (§5)")
	fmt.Printf("    %d function families, exhaustive slice programs + %d random programs\n\n", *families, *random)

	start := time.Now()
	matrix := timeprot.ProofMatrix(*families, *random, *seed)
	for _, row := range matrix {
		verdict := "PROVED"
		if !row.Report.Proved() {
			verdict = "refuted"
		}
		fmt.Printf("%-18s -> %s\n%s\n", row.Name, verdict, row.Report)
	}
	fmt.Printf("completed in %.1fs\n", time.Since(start).Seconds())
}
