// Command tpprove runs the proof-matrix engine: the paper's headline
// result (experiment T1) — the machine-checked proof of time protection
// over the abstract partitionable/flushable hardware model and its
// refutation under every single-mechanism ablation — expanded into an
// ablation × model-variant × family-count × seed grid executed on the
// experiment engine's deterministic worker pool.
//
// For each cell it reports the §5.2 case-analysis verdicts (Case 1:
// user steps; Case 2a: kernel entries; Case 2b: the padded switch; plus
// interrupt partitioning and SMT) and the exhaustive bounded
// noninterference check over sampled time-function families. Every
// refuted cell carries a MINIMAL counterexample witness: a divergent Hi
// program pair shrunk until each remaining action is load-bearing, with
// the diverging Lo observation traces as evidence.
//
// With -store it is incremental: proof cells are keyed by a content
// address (prover fingerprint + ablation + model configuration +
// sampling point), cached cells are served without re-proving, and the
// emitted reports are byte-identical either way. With -shard i/n it
// runs one deterministic shard of the grid (the JSON report is then
// partial; -md is rejected, since the document embeds its full-matrix
// regeneration command); shard stores merge (-merge-from) into one.
// -warm-only asserts a fully cached run — CI's cheap re-verification
// check for the committed PROOFS.md.
//
// All timing goes to stderr; stdout and every report file are pure
// functions of the matrix spec, so documents regenerate byte-stably.
//
// Usage:
//
//	tpprove [-ablations all|"no flush,..."] [-models all|base,...]
//	        [-families 5] [-random N] [-seed S | -seeds S1,S2,...]
//	        [-parallel P] [-store DIR] [-shard i/n] [-merge-from DIR,...]
//	        [-warm-only] [-out proofs.json] [-md PROOFS.md] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"timeprot"
	"timeprot/internal/cliutil"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpprove: "+format+"\n", args...)
	os.Exit(1)
}

func splitList(s string) []string { return cliutil.SplitList(s) }

func main() {
	ablations := flag.String("ablations", "all", `comma-separated ablation rows by name ("no flush"); all = every canonical row`)
	models := flag.String("models", "all", "comma-separated abstract-model variants by name; all = every registered variant")
	families := flag.String("families", "5", "comma-separated sampled time-function family counts per cell")
	random := flag.Int("random", 200, "extra random Hi programs beyond the exhaustive slice set (0 = exhaustive only)")
	seed := flag.Uint64("seed", 42, "base seed for function-family sampling")
	seeds := flag.String("seeds", "", "comma-separated base seeds (overrides -seed)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS); never affects results")
	sf := cliutil.RegisterStore(flag.CommandLine, "proof cell")
	out := flag.String("out", "", "write JSON results to this path")
	md := flag.String("md", "", "write the Markdown report (PROOFS.md format) to this path")
	quiet := flag.Bool("quiet", false, "suppress progress and text report on stdout")
	flag.Parse()

	if *random < 0 {
		fail("bad -random %d: must be >= 0", *random)
	}
	spec := timeprot.ProofMatrixSpec{
		Ablations: splitList(*ablations),
		Models:    splitList(*models),
		Random:    *random,
		Seeds:     []uint64{*seed},
	}
	for _, tok := range splitList(*families) {
		v, err := strconv.Atoi(tok)
		if err != nil || v <= 0 {
			fail("bad -families entry %q", tok)
		}
		spec.Families = append(spec.Families, v)
	}
	if *seeds != "" {
		spec.Seeds = nil
		for _, tok := range splitList(*seeds) {
			v, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				fail("bad -seeds entry %q: %v", tok, err)
			}
			spec.Seeds = append(spec.Seeds, v)
		}
	}

	var stats timeprot.SweepCacheStats
	opt := timeprot.ProofMatrixOptions{Parallelism: *parallel, Stats: &stats}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	st, sel, err := sf.Resolve(logf)
	if err != nil {
		fail("%v", err)
	}
	opt.Store, opt.Shard = st, sel
	if sel.Count > 1 && *md != "" {
		// A sharded matrix is partial, but the Markdown document
		// embeds the full-matrix regeneration command: emitting it
		// here would commit a document that its own command cannot
		// reproduce. Merge the shard stores and regenerate warm.
		fail("-md requires the full matrix: run the shards with -store, then regenerate with -merge-from/-warm-only")
	}

	if !*quiet {
		fmt.Println("T1 — proving time protection over the abstract model (§5)")
		fmt.Printf("prover fingerprint %s\n\n", timeprot.ProverFingerprint())
		opt.Progress = func(done, total int, c timeprot.ProofMatrixCell) {
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %s / %s (families %d, seed %d)\x1b[K",
				done, total, c.Model, c.Ablation, c.Families, c.Seed)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	rep, err := timeprot.RunProofMatrix(spec, opt)
	if err != nil {
		fail("%v", err)
	}
	// Close before the os.Exit paths below so the packed backend's
	// index sidecar and final sync are persisted.
	if st != nil {
		if cerr := st.Close(); cerr != nil {
			fail("closing store: %v", cerr)
		}
	}

	if !*quiet {
		if err := timeprot.WriteProofsText(os.Stdout, rep); err != nil {
			fail("%v", err)
		}
		// Timing is diagnostic only and must never enter a report
		// stream: stdout stays a pure function of the spec.
		fmt.Fprintf(os.Stderr, "proved %d cells in %.1fs\n", len(rep.Cells), time.Since(start).Seconds())
		if sf.Dir != "" {
			fmt.Fprintf(os.Stderr, "store: %d/%d cells cached, %d executed, %d stored\n",
				stats.Hits, stats.Total, stats.Executed, stats.Stored)
		}
	}
	if stats.FailedPuts > 0 {
		fmt.Fprintf(os.Stderr, "tpprove: warning: %d store write-backs failed (will re-prove next run): %s\n",
			stats.FailedPuts, stats.FailedPut)
	}
	if sf.WarmOnly && stats.Executed > 0 {
		fail("-warm-only: %d of %d proof cells were not served from the store", stats.Executed, stats.Total)
	}
	failures := 0
	for _, c := range rep.Cells {
		if c.Err != "" {
			failures++
			fmt.Fprintf(os.Stderr, "tpprove: cell %s/%s (families %d, seed %d) failed: %s\n",
				c.Model, c.Ablation, c.Families, c.Seed, c.Err)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		if err := timeprot.WriteProofsJSON(f, rep); err != nil {
			fail("writing %s: %v", *out, err)
		}
		if err := f.Close(); err != nil {
			fail("closing %s: %v", *out, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fail("%v", err)
		}
		if err := timeprot.WriteProofsMarkdown(f, rep); err != nil {
			fail("writing %s: %v", *md, err)
		}
		if err := f.Close(); err != nil {
			fail("closing %s: %v", *md, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *md)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
