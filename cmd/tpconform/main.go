// Command tpconform runs the model-conformance harness: property-based
// cross-checking of the abstract prover model against the concrete
// simulator. Each cell of the model-variant × ablation × pair × seed
// matrix generates a random Hi program pair, runs it through BOTH the
// abstract prover (bounded noninterference over sampled time-function
// families) and the concrete simulator (a compiled trojan/spy
// measurement with CI-backed capacity estimates on every observation
// stream), and classifies the cross-check:
//
//   - sound: the sides agree (prover accepts + no leak, or prover
//     refutes + demonstrated leak);
//   - conservative: the prover refutes but the simulator measures no
//     leak — allowed, a refutation is a refusal to certify;
//   - violation: the prover accepts while the simulator measures a
//     replicated leak above the noise floor — fatal, the abstract model
//     fails to over-approximate a concrete channel. The pair is shrunk
//     to a minimal witness and the run exits non-zero.
//
// With -store it is incremental: conformance cells are keyed by a
// content address over BOTH sides' model versions, so any layer bump
// re-certifies soundness cold. -shard/-merge-from/-warm-only have the
// tpbench/tpprove semantics (the three CLIs share the flag wiring).
//
// All timing goes to stderr; stdout and the -out file are pure
// functions of the matrix spec, so outputs regenerate byte-stably.
//
// Usage:
//
//	tpconform [-models all|base,...] [-ablations all|"no flush,..."]
//	          [-pairs N] [-rounds R] [-families F]
//	          [-seed S | -seeds S1,S2,...] [-parallel P]
//	          [-store DIR] [-shard i/n] [-merge-from DIR,...]
//	          [-warm-only] [-out conform.json] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"timeprot"
	"timeprot/internal/cliutil"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpconform: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	models := flag.String("models", "all", "comma-separated abstract-model variants by name; all = every registered variant")
	ablations := flag.String("ablations", "all", `comma-separated ablation rows by name ("no flush"); all = every conformance row`)
	pairs := flag.Int("pairs", 0, "generated program pairs per (model, seed) block (0 = engine default)")
	rounds := flag.Int("rounds", 0, "concrete transmission rounds per cell (0 = engine default)")
	families := flag.Int("families", 0, "sampled time-function families on the abstract side (0 = engine default)")
	seed := flag.Uint64("seed", 42, "base seed for pair generation and family sampling")
	seeds := flag.String("seeds", "", "comma-separated base seeds (overrides -seed)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS); never affects results")
	sf := cliutil.RegisterStore(flag.CommandLine, "conformance cell")
	out := flag.String("out", "", "write JSON results to this path")
	quiet := flag.Bool("quiet", false, "suppress progress and text report on stdout")
	flag.Parse()

	spec := timeprot.ConformanceSpec{
		Models:    cliutil.SplitList(*models),
		Ablations: cliutil.SplitList(*ablations),
		Pairs:     *pairs,
		Rounds:    *rounds,
		Families:  *families,
		Seeds:     []uint64{*seed},
	}
	if *seeds != "" {
		spec.Seeds = nil
		for _, tok := range cliutil.SplitList(*seeds) {
			v, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				fail("bad -seeds entry %q: %v", tok, err)
			}
			spec.Seeds = append(spec.Seeds, v)
		}
	}

	var stats timeprot.SweepCacheStats
	opt := timeprot.ConformanceOptions{Parallelism: *parallel, Stats: &stats}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	st, sel, err := sf.Resolve(logf)
	if err != nil {
		fail("%v", err)
	}
	opt.Store, opt.Shard = st, sel

	if !*quiet {
		fmt.Println("conformance — cross-checking the abstract prover model against the concrete simulator")
		fmt.Printf("conformance fingerprint %s\n\n", timeprot.ConformFingerprint())
		opt.Progress = func(done, total int, c timeprot.ConformanceCell) {
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %s / %s (pair %d, seed %d)\x1b[K",
				done, total, c.Model, c.Ablation, c.Pair, c.Seed)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	rep, err := timeprot.RunConformance(spec, opt)
	if err != nil {
		fail("%v", err)
	}
	// Close before the os.Exit paths below so the packed backend's
	// index sidecar and final sync are persisted.
	if st != nil {
		if cerr := st.Close(); cerr != nil {
			fail("closing store: %v", cerr)
		}
	}

	if !*quiet {
		if err := timeprot.WriteConformanceText(os.Stdout, rep); err != nil {
			fail("%v", err)
		}
		// Timing is diagnostic only and must never enter a report
		// stream: stdout stays a pure function of the spec.
		fmt.Fprintf(os.Stderr, "checked %d cells in %.1fs\n", len(rep.Cells), time.Since(start).Seconds())
		if sf.Dir != "" {
			fmt.Fprintf(os.Stderr, "store: %d/%d cells cached, %d executed, %d stored\n",
				stats.Hits, stats.Total, stats.Executed, stats.Stored)
		}
	}
	if stats.FailedPuts > 0 {
		fmt.Fprintf(os.Stderr, "tpconform: warning: %d store write-backs failed (will re-check next run): %s\n",
			stats.FailedPuts, stats.FailedPut)
	}
	if sf.WarmOnly && stats.Executed > 0 {
		fail("-warm-only: %d of %d conformance cells were not served from the store", stats.Executed, stats.Total)
	}
	failures := 0
	for _, c := range rep.Cells {
		if c.Err != "" {
			failures++
			fmt.Fprintf(os.Stderr, "tpconform: cell %s/%s (pair %d, seed %d) failed: %s\n",
				c.Model, c.Ablation, c.Pair, c.Seed, c.Err)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		if err := timeprot.WriteConformanceJSON(f, rep); err != nil {
			fail("writing %s: %v", *out, err)
		}
		if err := f.Close(); err != nil {
			fail("closing %s: %v", *out, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	}
	if v := rep.Violations(); len(v) > 0 {
		for _, c := range v {
			fmt.Fprintf(os.Stderr, "tpconform: SOUNDNESS VIOLATION: cell %s/%s (pair %d, seed %d)\n",
				c.Model, c.Ablation, c.Pair, c.Seed)
		}
		os.Exit(1)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
