// Command tpserved serves the sweep engine over HTTP: a long-lived
// multi-tenant service accepting the same sweep, proof, and
// conformance specs the CLIs take (as JSON), scheduling their cells
// across one bounded worker pool, deduplicating identical in-flight
// cells across concurrent clients, and serving warm results from a
// shared content-addressed store.
//
// The service invariants (a cell key executes at most once however
// many clients want it; a served report is byte-identical to a cold
// single-process run) are documented in internal/serve and proved by
// the load-test harness, which -selftest runs against a real listener:
// N concurrent clients submit overlapping matrices (full, sharded,
// duplicate) and the run fails unless executed cells == distinct keys
// and the served union report matches a cold in-process run — twice,
// cold then warm (zero executions the second round).
//
// Usage:
//
//	tpserved -store DIR [-addr HOST:PORT] [-workers N]
//	tpserved -selftest [-clients N] [-shards N] [-scenarios T2,..] [-rounds N]
//
// API (all JSON; see internal/serve):
//
//	POST /v1/jobs             submit {"kind":"sweep","sweep":{...}} (or proof/conform) -> 202 + job ID
//	GET  /v1/jobs             list job statuses
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/stream NDJSON event stream (history replay, then live, ends at a terminal state)
//	GET  /v1/jobs/{id}/result the done job's report (byte-identical to the CLI's -out)
//	POST /v1/jobs/{id}/cancel cancel; completed cells stay in the store
//	GET  /v1/stats            server-wide dedup accounting
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"timeprot/internal/cliutil"
	"timeprot/internal/experiment"
	"timeprot/internal/serve"
	"timeprot/internal/serve/loadtest"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpserved: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	sf := cliutil.RegisterStore(flag.CommandLine, "cell")
	svf := cliutil.RegisterServe(flag.CommandLine)
	selftest := flag.Bool("selftest", false, "run the load-test harness against an in-process server on a throwaway store, then exit")
	clients := flag.Int("clients", 4, "selftest: concurrent clients submitting overlapping matrices")
	shards := flag.Int("shards", 2, "selftest: n of the i/n-sharded submissions mixed into the schedule")
	scenarios := flag.String("scenarios", "T2", "selftest: comma-separated scenarios of the union matrix")
	rounds := flag.Int("rounds", 8, "selftest: transmission rounds per cell")
	flag.Parse()

	if *selftest {
		runSelfTest(*clients, *shards, *scenarios, *rounds)
		return
	}

	if sf.Dir == "" {
		fail("-store is required (the shared result store every tenant reads and fills)")
	}
	if sf.Shard != "" {
		fail("-shard is per-job in serve mode: put \"shard\":\"i/n\" in the submission instead")
	}
	if sf.WarmOnly {
		fail("-warm-only is a CLI assertion; the service reports warm/cold per cell in its stats")
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tpserved: "+format+"\n", args...)
	}
	st, _, err := sf.Resolve(logf)
	if err != nil {
		fail("%v", err)
	}

	srv := serve.New(st, serve.Config{Workers: svf.Workers})
	ln, err := net.Listen("tcp", svf.Addr)
	if err != nil {
		srv.Close()
		fail("%v", err)
	}
	logf("listening on http://%s (store %s, %s backend)", ln.Addr(), sf.Dir, sf.Backend)
	logf("engine %s", experiment.Fingerprint())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logf("%v: draining (in-flight cells finish and are written back)", s)
	case err := <-done:
		srv.Close()
		fail("serve: %v", err)
	}
	hs.Close()
	// Close cancels every job but waits for in-flight cells to write
	// back before closing the store — a restart on the same -store
	// resumes exactly where this run stopped.
	if err := srv.Close(); err != nil {
		fail("shutdown: %v", err)
	}
}

// runSelfTest proves the service invariants end to end on this
// machine: real listener, real HTTP clients, throwaway store.
func runSelfTest(clients, shards int, scenarios string, rounds int) {
	dir, err := os.MkdirTemp("", "tpserved-selftest-*")
	if err != nil {
		fail("selftest: %v", err)
	}
	defer os.RemoveAll(dir)
	spec := experiment.Spec{
		Scenarios: cliutil.SplitList(scenarios),
		Rounds:    rounds,
		Seeds:     []uint64{42, 43},
	}
	logf := func(format string, args ...any) {
		fmt.Printf("selftest: "+format+"\n", args...)
	}
	if err := loadtest.SelfTest(dir, clients, shards, spec, logf); err != nil {
		fail("%v", err)
	}
	logf("ok: dedup and byte-identity invariants hold under %d clients", clients)
}
