// Command tpstore inspects and migrates content-addressed result
// stores between the two backends: the file-per-cell layout every CLI
// writes by default, and the packed segment layout for matrices too
// large for one-inode-per-cell.
//
// Usage:
//
//	tpstore pack    -from FILE_DIR   -to PACKED_DIR   migrate file → packed
//	tpstore unpack  -from PACKED_DIR -to FILE_DIR     migrate packed → file
//	tpstore ls      -store DIR                        list entry keys
//	tpstore stat    -store DIR                        backend, entry count, packed segment stats
//	tpstore compact -store DIR                        rewrite a packed store, dropping dead and stale records
//
// Both migrations are MergeFrom under the hood: entries are copied as
// their exact envelope bytes, so a packed-then-unpacked store is
// byte-identical to the original and every cached cell stays warm.
// Corrupt source entries are skipped (they are misses by contract),
// which makes pack/unpack double as a repair pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"timeprot/internal/cliutil"
	"timeprot/internal/experiment/store"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpstore: "+format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tpstore pack|unpack|ls|stat|compact [flags]")
	fmt.Fprintln(os.Stderr, "  pack    -from FILE_DIR -to PACKED_DIR   migrate a file store into a packed store")
	fmt.Fprintln(os.Stderr, "  unpack  -from PACKED_DIR -to FILE_DIR   migrate a packed store into a file store")
	fmt.Fprintln(os.Stderr, "  ls      -store DIR                      list entry keys, sorted")
	fmt.Fprintln(os.Stderr, "  stat    -store DIR                      report backend, entries, segments")
	fmt.Fprintln(os.Stderr, "  compact -store DIR                      drop dead and stale-fingerprint records")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "pack":
		migrate(cmd, store.BackendPacked, args)
	case "unpack":
		migrate(cmd, store.BackendFile, args)
	case "ls":
		ls(args)
	case "stat":
		stat(args)
	case "compact":
		compact(args)
	default:
		usage()
	}
}

// migrate copies every valid entry of -from into -to, where -to is
// opened (or created) under the given backend. The source backend is
// auto-detected by MergeFrom, so the same code serves both directions.
func migrate(cmd, toBackend string, args []string) {
	fs := flag.NewFlagSet("tpstore "+cmd, flag.ExitOnError)
	from := fs.String("from", "", "source store directory (backend auto-detected)")
	to := fs.String("to", "", "destination store directory")
	fs.Parse(args)
	if *from == "" || *to == "" {
		fail("%s needs -from and -to", cmd)
	}
	if *from == *to {
		fail("-from and -to are the same directory")
	}
	dst, err := store.OpenBackend(toBackend, *to, cliutil.PackedOptions())
	if err != nil {
		fail("%v", err)
	}
	added, err := dst.MergeFrom(*from)
	if err != nil {
		fail("migrating: %v", err)
	}
	if err := dst.Close(); err != nil {
		fail("closing %s: %v", *to, err)
	}
	n, err := countEntries(*to)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("%s: %d entries copied from %s; %s now holds %d entries\n", cmd, added, *from, *to, n)
}

func countEntries(dir string) (int, error) {
	st, err := store.OpenBackend(store.BackendAuto, dir, store.PackedOptions{NoAutoCompact: true})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	return st.Len()
}

func ls(args []string) {
	fs := flag.NewFlagSet("tpstore ls", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (backend auto-detected)")
	fs.Parse(args)
	if *dir == "" {
		fail("ls needs -store")
	}
	st, err := store.OpenBackend(store.BackendAuto, *dir, store.PackedOptions{NoAutoCompact: true})
	if err != nil {
		fail("%v", err)
	}
	defer st.Close()
	keys, err := st.Keys()
	if err != nil {
		fail("%v", err)
	}
	for _, k := range keys {
		fmt.Println(k)
	}
}

func stat(args []string) {
	fs := flag.NewFlagSet("tpstore stat", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (backend auto-detected)")
	fs.Parse(args)
	if *dir == "" {
		fail("stat needs -store")
	}
	backend := store.DetectBackend(*dir)
	st, err := store.OpenBackend(backend, *dir, store.PackedOptions{NoAutoCompact: true})
	if err != nil {
		fail("%v", err)
	}
	defer st.Close()
	n, err := st.Len()
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("backend:  %s\n", backend)
	fmt.Printf("entries:  %d\n", n)
	if p, ok := st.(*store.Packed); ok {
		s := p.Stats()
		fmt.Printf("segments: %d\n", s.Segments)
		fmt.Printf("bytes:    %d\n", s.Bytes)
		fmt.Printf("dead:     %d\n", s.Dead)
	}
}

func compact(args []string) {
	fs := flag.NewFlagSet("tpstore compact", flag.ExitOnError)
	dir := fs.String("store", "", "packed store directory")
	fs.Parse(args)
	if *dir == "" {
		fail("compact needs -store")
	}
	if store.DetectBackend(*dir) != store.BackendPacked {
		fail("%s is not a packed store (the file backend has nothing to compact)", *dir)
	}
	// Open without auto-compaction so the explicit pass below is the
	// only rewrite and its dropped count is the whole story. The
	// current fingerprints come from cliutil so stale records are
	// collected, exactly as the CLIs would tag them.
	opt := cliutil.PackedOptions()
	opt.NoAutoCompact = true
	p, err := store.OpenPacked(*dir, opt)
	if err != nil {
		fail("%v", err)
	}
	dropped, err := p.Compact()
	if err != nil {
		fail("compacting: %v", err)
	}
	n, _ := p.Len()
	if err := p.Close(); err != nil {
		fail("closing: %v", err)
	}
	fmt.Printf("compact: dropped %d records, %d live\n", dropped, n)
}
