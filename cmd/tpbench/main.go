// Command tpbench runs the experiment sweep engine: the full attack ×
// mitigation × seed matrix of the paper's evaluation (T2-T17), the T1
// proof-ablation matrix, and the aISA contract report, executed
// concurrently on a worker pool with bit-identical results at any
// parallelism.
//
// It regenerates EXPERIMENTS.md (-md) and emits machine-readable
// results (-out).
//
// With -ci it samples adaptively: each cell climbs a doubling rounds
// ladder and stops as soon as the 95% bootstrap confidence interval on
// its capacity is tighter than the target half-width (or the -max-rounds
// cap is hit), so converged cells — closed channels converge almost
// immediately — stop early and the round budget concentrates where the
// estimator is still uncertain. The leak/blocked verdicts match the
// fixed-rounds sweep; only the measurement effort adapts.
//
// With -store it becomes incremental: each cell is keyed by a content
// address (engine fingerprint + scenario version + configuration +
// adaptive policy + seed point), cells already in the store are served
// without re-execution, and the emitted reports are byte-identical
// either way. With -shard i/n it runs one deterministic shard of the
// matrix, so a huge sweep can spread over independent processes or
// machines whose stores merge (-merge-from) into one. -warm-only
// asserts a fully cached run (CI's cheap re-verification check).
//
// Usage:
//
//	tpbench [-sweep all|T2,l1pp,...] [-variants "label,..."]
//	        [-rounds N] [-ci W [-max-rounds M]]
//	        [-seed S | -seeds S1,S2,...] [-trials K]
//	        [-parallel P] [-proofs=false] [-cpuprofile tpbench.prof]
//	        [-store DIR] [-shard i/n] [-merge-from DIR,...] [-warm-only]
//	        [-out results.json] [-md EXPERIMENTS.md] [-quiet]
//	        [-bench-cells [-bench-reps N]]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"testing"
	"time"

	"timeprot"
	"timeprot/internal/attacks"
	"timeprot/internal/cliutil"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpbench: "+format+"\n", args...)
	os.Exit(1)
}

func splitList(s string) []string { return cliutil.SplitList(s) }

// benchCell is one cell of the fixed throughput matrix: a
// representative variant per hot-path shape (time-multiplexed
// prime-probe, concurrent occupancy, multi-bit cross-core), pinned at
// the rounds and seed the BENCH_N.json trajectory tracks.
type benchCell struct {
	scenario, label string
}

var benchMatrix = []benchCell{
	{"T2", "unprotected"},
	{"T16", "no colouring (8 colours)"},
	{"T17", "unprotected"},
}

const (
	benchRounds = 30
	benchSeed   = 42
)

// runBenchCells measures whole-cell throughput cold (fresh allocations
// per cell) and warm (one reused CellContext), plus the marginal
// allocations per cell in each mode. Everything goes to stderr: stdout
// stays byte-stable so -bench-cells composes with shell pipelines that
// expect report output only.
func runBenchCells(reps int) {
	resolve := func(bc benchCell) attacks.Variant {
		s, ok := attacks.ScenarioByID(bc.scenario)
		if !ok {
			fail("bench-cells: unknown scenario %s", bc.scenario)
		}
		v, ok := s.VariantByLabel(bc.label)
		if !ok {
			fail("bench-cells: variant %q not in %s", bc.label, bc.scenario)
		}
		return v
	}

	type mode struct {
		name string
		run  func(v attacks.Variant)
	}
	cc := attacks.NewCellContext()
	modes := []mode{
		{"cold", func(v attacks.Variant) { v.Run(benchRounds, benchSeed) }},
		{"warm", func(v attacks.Variant) { v.RunIn(cc, benchRounds, benchSeed) }},
	}

	for _, m := range modes {
		// One untimed pass warms the context (and, cold, the page
		// cache/JIT-free Go equivalent: branch predictors, heap shape).
		for _, bc := range benchMatrix {
			m.run(resolve(bc))
		}
		start := time.Now()
		cells := 0
		for r := 0; r < reps; r++ {
			for _, bc := range benchMatrix {
				m.run(resolve(bc))
				cells++
			}
		}
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "bench-cells: %s %d cells in %.2fs = %.2f cells/sec\n",
			m.name, cells, elapsed, float64(cells)/elapsed)
	}
	for _, bc := range benchMatrix {
		v := resolve(bc)
		cold := testing.AllocsPerRun(3, func() { v.Run(benchRounds, benchSeed) })
		warm := testing.AllocsPerRun(3, func() { v.RunIn(cc, benchRounds, benchSeed) })
		fmt.Fprintf(os.Stderr, "bench-cells: %s/%s: %.0f allocs/cell cold, %.0f warm\n",
			bc.scenario, bc.label, cold, warm)
	}
}

func main() {
	sweep := flag.String("sweep", "all", "comma-separated scenarios by ID (T2) or name (l1pp); all = every scenario")
	variants := flag.String("variants", "", "comma-separated exact variant labels to include (default: all)")
	rounds := flag.Int("rounds", 60, "transmission rounds per cell (more = tighter estimates, slower)")
	ci := flag.Float64("ci", 0, "adaptive sampling: stop a cell once its capacity 95% CI half-width falls to this many bits (0 = fixed rounds; 0.05 matches the leak margin)")
	maxRounds := flag.Int("max-rounds", 0, "adaptive rounds-ladder cap in requested rounds (0 = 4x -rounds); requires -ci")
	seed := flag.Uint64("seed", 42, "deterministic base seed")
	seeds := flag.String("seeds", "", "comma-separated base seeds (overrides -seed)")
	trials := flag.Int("trials", 1, "derived-seed repeats per base seed")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS); never affects results")
	proofs := flag.Bool("proofs", true, "include the T1 proof-ablation matrix")
	families := flag.Int("families", 5, "sampled time-function families per proof configuration")
	random := flag.Int("random", 200, "extra random Hi programs in the bounded proof check")
	sf := cliutil.RegisterStore(flag.CommandLine, "cell")
	out := flag.String("out", "", "write JSON results to this path")
	md := flag.String("md", "", "write the Markdown report (EXPERIMENTS.md format) to this path")
	quiet := flag.Bool("quiet", false, "suppress progress and text tables on stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
	benchCells := flag.Bool("bench-cells", false, "measure whole-cell throughput (cells/sec cold and warm) and allocs/cell on a fixed matrix, to stderr, then exit")
	benchReps := flag.Int("bench-reps", 10, "timed passes over the fixed matrix for -bench-cells")
	flag.Parse()

	if *benchCells {
		runBenchCells(*benchReps)
		return
	}

	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("starting CPU profile: %v", err)
		}
		stopped := false
		stopProfile = func() {
			if stopped {
				return
			}
			stopped = true
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail("closing %s: %v", *cpuprofile, err)
			}
		}
	}
	defer stopProfile()

	if *maxRounds > 0 && *ci <= 0 {
		fail("-max-rounds requires -ci")
	}
	spec := timeprot.SweepSpec{
		Scenarios:     splitList(*sweep),
		Variants:      splitList(*variants),
		Rounds:        *rounds,
		CIHalfWidth:   *ci,
		MaxRounds:     *maxRounds,
		Seeds:         []uint64{*seed},
		Trials:        *trials,
		Proofs:        *proofs,
		ProofFamilies: *families,
		ProofRandom:   *random,
	}
	if *seeds != "" {
		spec.Seeds = nil
		for _, tok := range splitList(*seeds) {
			v, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				fail("bad -seeds entry %q: %v", tok, err)
			}
			spec.Seeds = append(spec.Seeds, v)
		}
	}

	var stats timeprot.SweepCacheStats
	opt := timeprot.SweepOptions{Parallelism: *parallel, Stats: &stats}

	// Merge chatter goes to stdout here (tpbench's progress stream);
	// the report files stay pure functions of the spec regardless.
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	st, sel, err := sf.Resolve(logf)
	if err != nil {
		fail("%v", err)
	}
	opt.Store, opt.Shard = st, sel

	if !*quiet {
		fmt.Println("timeprot experiment sweep — reproducing the evaluation of")
		fmt.Println("\"Can We Prove Time Protection?\" (HotOS 2019) on the simulated platform")
		fmt.Println()
		opt.Progress = func(done, total int, c timeprot.SweepCell) {
			fmt.Fprintf(os.Stderr, "\r[%3d/%3d] %s / %s (seed %d)\x1b[K", done, total, c.ScenarioID, c.Variant, c.Seed)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	rep, err := timeprot.RunSweep(spec, opt)
	if err != nil {
		fail("%v", err)
	}
	// The store's work is done once the sweep returns; closing now (not
	// deferred past the os.Exit paths below) persists the packed
	// backend's index sidecar and final sync.
	if st != nil {
		if cerr := st.Close(); cerr != nil {
			fail("closing store: %v", cerr)
		}
	}

	if !*quiet {
		if err := timeprot.WriteSweepText(os.Stdout, rep); err != nil {
			fail("%v", err)
		}
		elapsed := time.Since(start).Seconds()
		ops := rep.TotalSimOps()
		fmt.Printf("sweep: %d cells, %.1fM simulated ops in %.1fs (%.2fM ops/s)\n",
			len(rep.Cells), float64(ops)/1e6, elapsed, float64(ops)/1e6/elapsed)
		if *ci > 0 {
			run, fixed := rep.TotalRounds()
			fmt.Printf("adaptive: %d rounds simulated vs %d under the fixed policy (%.0f%%)\n",
				run, fixed, 100*float64(run)/float64(fixed))
		}
		if sf.Dir != "" {
			fmt.Printf("store: %d/%d cells cached, %d executed, %d stored (fingerprint %s)\n",
				stats.Hits, stats.Total, stats.Executed, stats.Stored, timeprot.SweepFingerprint())
			if stats.ProofTotal > 0 {
				fmt.Printf("store: %d/%d proof cells cached, %d executed, %d stored (prover %s)\n",
					stats.ProofHits, stats.ProofTotal, stats.ProofExecuted, stats.ProofStored, timeprot.ProverFingerprint())
			}
		}
	}
	if stats.FailedPuts > 0 {
		fmt.Fprintf(os.Stderr, "tpbench: warning: %d store write-backs failed (will re-execute next run): %s\n",
			stats.FailedPuts, stats.FailedPut)
	}
	if sf.WarmOnly && stats.Executed > 0 {
		fail("-warm-only: %d of %d cells were not served from the store", stats.Executed, stats.Total)
	}
	if sf.WarmOnly && stats.ProofExecuted > 0 {
		fail("-warm-only: %d of %d proof cells were not served from the store", stats.ProofExecuted, stats.ProofTotal)
	}
	failures := 0
	for _, c := range rep.Cells {
		if c.Err != "" {
			failures++
			fmt.Fprintf(os.Stderr, "tpbench: cell %s/%s (seed %d) failed: %s\n", c.ScenarioID, c.Variant, c.Seed, c.Err)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		if err := timeprot.WriteSweepJSON(f, rep); err != nil {
			fail("writing %s: %v", *out, err)
		}
		if err := f.Close(); err != nil {
			fail("closing %s: %v", *out, err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *out)
		}
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fail("%v", err)
		}
		if err := timeprot.WriteSweepMarkdown(f, rep); err != nil {
			fail("writing %s: %v", *md, err)
		}
		if err := f.Close(); err != nil {
			fail("closing %s: %v", *md, err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *md)
		}
	}
	if failures > 0 {
		stopProfile()
		os.Exit(1)
	}
}
