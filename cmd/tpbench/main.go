// Command tpbench regenerates every experiment table of EXPERIMENTS.md:
// the attack/defence capacity measurements T2-T9 and the padding
// sufficiency check T11, plus the aISA contract report.
//
// Usage:
//
//	tpbench [-rounds N] [-seed S] [-run T2,T5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"timeprot"
)

func main() {
	rounds := flag.Int("rounds", 60, "transmission rounds per configuration (more = tighter estimates, slower)")
	seed := flag.Uint64("seed", 42, "deterministic seed for workloads and estimators")
	run := flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	ids := timeprot.ExperimentIDs
	if *run != "" {
		ids = strings.Split(*run, ",")
	}

	fmt.Println("timeprot experiment harness — reproducing the evaluation of")
	fmt.Println("\"Can We Prove Time Protection?\" (HotOS 2019) on the simulated platform")
	fmt.Println()
	fmt.Println("aISA contract (full protection on the default platform):")
	fmt.Print(timeprot.CheckContract(timeprot.FullProtection(), timeprot.DefaultPlatform()))
	fmt.Println()

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		e, err := timeprot.RunExperiment(id, *rounds, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(e)
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
