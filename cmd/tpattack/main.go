// Command tpattack is a workbench for a single covert-channel attack
// scenario: it runs the scenario's canonical mitigation sweep through
// the experiment engine, or — for scenarios whose runner takes an
// arbitrary protection configuration — a bespoke configuration chosen
// with -protect, to explore which mechanism closes which channel.
//
// Usage:
//
//	tpattack -scenario l1pp|llcpp|flush|kimage|irq|smt|bus|downgrader|padding|overheads|branch|tlb \
//	         [-protect all|none|flush,pad,colour,clone,irq,smt,mindeliv] \
//	         [-rounds N] [-seed S] [-parallel P] \
//	         [-store DIR] [-store-backend file|packed|auto] [-shard i/n] [-merge-from DIRS] [-warm-only]
//	tpattack -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"timeprot"
	"timeprot/internal/attacks"
	"timeprot/internal/cliutil"
	"timeprot/internal/core"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpattack: "+format+"\n", args...)
	os.Exit(1)
}

func parseProtection(s string) (core.Config, error) {
	switch s {
	case "all":
		return core.FullProtection(), nil
	case "none", "":
		return core.NoProtection(), nil
	}
	cfg := core.NoProtection()
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "flush":
			cfg.FlushOnSwitch = true
		case "pad":
			cfg.PadSwitch = true
		case "colour", "color":
			cfg.ColorUserMemory = true
		case "clone":
			cfg.CloneKernel = true
		case "irq":
			cfg.PartitionIRQs = true
		case "smt":
			cfg.DisallowSMTSharing = true
		case "mindeliv":
			cfg.MinDeliveryIPC = true
		default:
			return cfg, fmt.Errorf("unknown mechanism %q", tok)
		}
	}
	return cfg, nil
}

func listScenarios() {
	fmt.Println("scenario    id   custom-config  title")
	for _, s := range attacks.Scenarios() {
		custom := "yes"
		if s.Custom == nil {
			custom = "no"
		}
		fmt.Printf("%-11s %-4s %-14s %s\n", s.Name, s.ID, custom, s.Title)
		for _, v := range s.Variants {
			fmt.Printf("              - %s\n", v.Label)
		}
	}
}

func main() {
	scenario := flag.String("scenario", "l1pp", "attack scenario by short name or experiment ID (see -list)")
	protect := flag.String("protect", "", "protection: all, none, or comma list (flush,pad,colour,clone,irq,smt,mindeliv); empty = the scenario's canonical mitigation sweep")
	rounds := flag.Int("rounds", 60, "transmission rounds")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	parallel := flag.Int("parallel", 0, "worker count for the canonical sweep (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list scenarios and their canonical variants, then exit")
	sf := cliutil.RegisterStore(flag.CommandLine, "cell")
	flag.Parse()

	if *list {
		listScenarios()
		return
	}

	s, ok := attacks.ScenarioByID(*scenario)
	if !ok {
		fail("unknown scenario %q; run with -list", *scenario)
	}

	st, sel, err := sf.Resolve(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		fail("%v", err)
	}

	// A bespoke protection configuration runs as a single cell, for
	// scenarios whose runner is configuration-shaped.
	if *protect != "" {
		if st != nil {
			fail("-store caches canonical sweep cells only; it cannot cache a bespoke -protect run")
		}
		cfg, err := parseProtection(*protect)
		if err != nil {
			fail("%v", err)
		}
		if s.Custom == nil {
			fail("scenario %s needs bespoke per-variant setup and does not take a custom configuration;\nrun its canonical sweep instead (omit -protect)", s.Name)
		}
		label := cfg.String()
		row := s.RunCustom(label, cfg, s.Rounds(*rounds), *seed)
		e := attacks.Experiment{ID: s.ID, Title: s.Title + " [custom configuration]", Rows: []attacks.Row{row}}
		fmt.Print(e)
		return
	}

	// Canonical sweep: every variant of the scenario, concurrently.
	var stats timeprot.SweepCacheStats
	rep, err := timeprot.RunSweep(timeprot.SweepSpec{
		Scenarios: []string{s.ID},
		Rounds:    *rounds,
		Seeds:     []uint64{*seed},
		Proofs:    false,
	}, timeprot.SweepOptions{Parallelism: *parallel, Store: st, Shard: sel, Stats: &stats})
	if err != nil {
		fail("%v", err)
	}
	if st != nil {
		if cerr := st.Close(); cerr != nil {
			fail("closing store: %v", cerr)
		}
	}
	if sf.WarmOnly && stats.Executed > 0 {
		fail("-warm-only: %d of %d cells were not served from the store", stats.Executed, stats.Total)
	}
	e := attacks.Experiment{ID: s.ID, Title: s.Title}
	for _, c := range rep.Cells {
		if c.Err != "" {
			fail("cell %s failed: %s", c.Variant, c.Err)
		}
		e.Rows = append(e.Rows, c.Row())
	}
	fmt.Print(e)
}
