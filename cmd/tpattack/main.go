// Command tpattack runs a single covert-channel attack scenario under a
// chosen protection configuration and prints the measured channel
// capacity — a workbench for exploring which mechanism closes which
// channel.
//
// Usage:
//
//	tpattack -scenario l1pp|llcpp|flush|kimage|irq|smt|bus|downgrader \
//	         [-protect all|none|flush,pad,colour,clone,irq,smt,mindeliv] \
//	         [-rounds N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"timeprot"
)

func parseProtection(s string) (timeprot.Config, error) {
	switch s {
	case "all":
		return timeprot.FullProtection(), nil
	case "none", "":
		return timeprot.NoProtection(), nil
	}
	cfg := timeprot.NoProtection()
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "flush":
			cfg.FlushOnSwitch = true
		case "pad":
			cfg.PadSwitch = true
		case "colour", "color":
			cfg.ColorUserMemory = true
		case "clone":
			cfg.CloneKernel = true
		case "irq":
			cfg.PartitionIRQs = true
		case "smt":
			cfg.DisallowSMTSharing = true
		case "mindeliv":
			cfg.MinDeliveryIPC = true
		default:
			return cfg, fmt.Errorf("unknown mechanism %q", tok)
		}
	}
	return cfg, nil
}

// scenarioID maps a scenario name to the experiment that contains it.
var scenarioID = map[string]string{
	"l1pp":       "T2",
	"llcpp":      "T3",
	"flush":      "T4",
	"kimage":     "T5",
	"irq":        "T6",
	"smt":        "T7",
	"bus":        "T8",
	"downgrader": "T9",
	"branch":     "T13",
	"tlb":        "T14",
}

func main() {
	scenario := flag.String("scenario", "l1pp", "attack scenario: l1pp, llcpp, flush, kimage, irq, smt, bus, downgrader, branch, tlb")
	protect := flag.String("protect", "", "protection: all, none, or comma list (flush,pad,colour,clone,irq,smt,mindeliv); empty = run the experiment's standard configuration sweep")
	rounds := flag.Int("rounds", 60, "transmission rounds")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	flag.Parse()

	id, ok := scenarioID[*scenario]
	if !ok {
		fmt.Fprintf(os.Stderr, "tpattack: unknown scenario %q\n", *scenario)
		os.Exit(1)
	}

	// The standard sweep covers each scenario's canonical
	// configurations; a -protect filter narrows the output to rows
	// whose label matches armed mechanisms loosely. Running bespoke
	// configurations beyond the sweep would require bespoke pad/colour
	// policies per scenario; the sweep rows are the meaningful ones.
	if *protect != "" {
		if _, err := parseProtection(*protect); err != nil {
			fmt.Fprintf(os.Stderr, "tpattack: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("note: showing the standard configuration sweep for %s; the requested\n", id)
		fmt.Printf("      protection set is validated but the sweep rows are canonical.\n\n")
	}

	e, err := timeprot.RunExperiment(id, *rounds, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpattack: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(e)
}
