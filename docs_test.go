package timeprot

import (
	"os"
	"strings"
	"testing"

	"timeprot/internal/attacks"
	"timeprot/internal/experiment"
)

// TestDocsCoverRegistry is the registry-completeness check: every
// static scenario must be documented in EXPERIMENTS.md (a result table)
// and DESIGN.md (the layer-3 inventory); every dynamically registered
// discovery (the fuzzer's F-scenarios) must be documented in the
// generated DISCOVERIES.md instead — the static tables stay pure
// functions of the static registry. A scenario that ships without
// documentation — or a doc table that outlives a removed scenario —
// fails here, so the docs pipeline cannot drift from the code. The
// byte-level drift check (regenerating EXPERIMENTS.md from the
// committed sweep store and comparing) runs in CI's docs job.
func TestDocsCoverRegistry(t *testing.T) {
	experiments := readDoc(t, "EXPERIMENTS.md")
	design := readDoc(t, "DESIGN.md")
	discoveries := readDoc(t, "DISCOVERIES.md")
	for _, s := range attacks.Scenarios() {
		if s.Dynamic {
			if !strings.Contains(discoveries, "| "+s.ID+" | "+s.Name+" | ") {
				t.Errorf("DISCOVERIES.md has no table row for %s (%s)", s.ID, s.Name)
			}
			if !strings.Contains(discoveries, "### "+s.ID+" — ") {
				t.Errorf("DISCOVERIES.md has no witness detail for %s (%s)", s.ID, s.Name)
			}
			for _, v := range s.Variants {
				if !strings.Contains(discoveries, "`"+v.Label+"`") {
					t.Errorf("DISCOVERIES.md entry for %s is missing variant %q", s.ID, v.Label)
				}
			}
			continue
		}
		if !strings.Contains(experiments, "## "+s.ID+" — ") {
			t.Errorf("EXPERIMENTS.md has no result table for %s (%s)", s.ID, s.Name)
		}
		if !strings.Contains(design, s.ID) {
			t.Errorf("DESIGN.md does not mention %s (%s)", s.ID, s.Name)
		}
		for _, v := range s.Variants {
			if !strings.Contains(experiments, "| "+v.Label+" |") {
				t.Errorf("EXPERIMENTS.md table for %s is missing variant %q", s.ID, v.Label)
			}
		}
	}
}

// TestDiscoveriesDocMatchesCommitted: DISCOVERIES.md must be the exact
// rendering of the embedded discoveries.json — the generated doc cannot
// drift from the committed campaign output.
func TestDiscoveriesDocMatchesCommitted(t *testing.T) {
	ds, err := CommittedDiscoveries()
	if err != nil {
		t.Fatalf("CommittedDiscoveries: %v", err)
	}
	var want strings.Builder
	if err := WriteDiscoveriesMD(&want, ds); err != nil {
		t.Fatalf("WriteDiscoveriesMD: %v", err)
	}
	if got := readDoc(t, "DISCOVERIES.md"); got != want.String() {
		t.Error("DISCOVERIES.md is stale; regenerate with: go run ./cmd/tpfuzz -md DISCOVERIES.md")
	}
}

// TestExperimentsRegenCommand: the committed EXPERIMENTS.md must embed
// the exact command that regenerates it — the contract the CI doc-drift
// job replays against the committed sweep store.
func TestExperimentsRegenCommand(t *testing.T) {
	experiments := readDoc(t, "EXPERIMENTS.md")
	if !strings.Contains(experiments, "go run ./cmd/tpbench") ||
		!strings.Contains(experiments, "-md EXPERIMENTS.md") {
		t.Error("EXPERIMENTS.md does not embed its regeneration command")
	}
}

// TestDocsCoverProofRegistry is the proof-side completeness check:
// every registered ablation row must appear as a table row of PROOFS.md
// and be named in DESIGN.md, every registered model variant must head a
// PROOFS.md section, and every refuted PROOFS.md row must carry a
// witness listing. A proof configuration that ships without
// documentation — or a doc that outlives a removed one — fails here.
func TestDocsCoverProofRegistry(t *testing.T) {
	proofs := readDoc(t, "PROOFS.md")
	design := readDoc(t, "DESIGN.md")
	for _, a := range experiment.ProofAblations() {
		if !strings.Contains(proofs, "| "+a.Name+" |") {
			t.Errorf("PROOFS.md has no table row for ablation %q", a.Name)
		}
		if !strings.Contains(design, a.Name) {
			t.Errorf("DESIGN.md does not mention ablation %q", a.Name)
		}
		if a.Name != "full protection" && !strings.Contains(proofs, "#### "+a.Name) {
			t.Errorf("PROOFS.md has no witness listing for refuted ablation %q", a.Name)
		}
	}
	for _, m := range experiment.ProofModels() {
		if !strings.Contains(proofs, "## Model `"+m.Name+"`") {
			t.Errorf("PROOFS.md has no section for model variant %q", m.Name)
		}
		if !strings.Contains(design, m.Name) {
			t.Errorf("DESIGN.md does not mention model variant %q", m.Name)
		}
	}
	if !strings.Contains(proofs, experiment.ProverFingerprint()) {
		t.Error("PROOFS.md does not embed the prover fingerprint")
	}
}

// TestProofsRegenCommand: PROOFS.md must embed the exact tpprove
// command that regenerates it, and EXPERIMENTS.md's T1 section must
// cross-reference PROOFS.md (the two documents are two renderings of
// one committed store).
func TestProofsRegenCommand(t *testing.T) {
	proofs := readDoc(t, "PROOFS.md")
	if !strings.Contains(proofs, "go run ./cmd/tpprove") ||
		!strings.Contains(proofs, "-md PROOFS.md") {
		t.Error("PROOFS.md does not embed its regeneration command")
	}
	experiments := readDoc(t, "EXPERIMENTS.md")
	start := strings.Index(experiments, "## T1")
	if start < 0 {
		t.Fatal("EXPERIMENTS.md has no §T1 section")
	}
	t1 := experiments[start:]
	if i := strings.Index(t1[3:], "## "); i >= 0 {
		t1 = t1[:i+3]
	}
	if !strings.Contains(t1, "PROOFS.md") {
		t.Error("EXPERIMENTS.md §T1 does not cross-reference PROOFS.md")
	}
}

// TestDocsCoverConformance is the conformance-side completeness check:
// DESIGN.md must document the conformance layer, README.md must carry
// the tpconform quickstart, every conformance ablation and model
// variant must be named in DESIGN.md, and both docs must name the
// three-way verdict taxonomy. A conformance configuration that ships
// without documentation fails here, exactly like a scenario or proof
// row would.
func TestDocsCoverConformance(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	readme := readDoc(t, "README.md")
	for _, doc := range []struct{ name, body string }{
		{"DESIGN.md", design},
		{"README.md", readme},
	} {
		for _, want := range []string{"internal/conform", "cmd/tpconform", "sound", "conservative", "soundness violation"} {
			if !strings.Contains(doc.body, want) {
				t.Errorf("%s does not mention %q", doc.name, want)
			}
		}
	}
	for _, a := range experiment.ConformAblations() {
		if !strings.Contains(design, a.Name) {
			t.Errorf("DESIGN.md does not mention conformance ablation %q", a.Name)
		}
	}
	for _, m := range experiment.ProofModels() {
		if !strings.Contains(design, m.Name) {
			t.Errorf("DESIGN.md does not mention model variant %q (conformance runs all variants)", m.Name)
		}
	}
	if !strings.Contains(design, experiment.ConformFingerprint()) {
		t.Error("DESIGN.md does not embed the conformance fingerprint")
	}
	if !strings.Contains(readme, "RunConformance") {
		t.Error("README.md does not name the RunConformance entry point")
	}
}

// TestDocsCoverService is the service-side completeness check: both
// README.md and DESIGN.md must document the sweep service — the binary,
// the package, the submit endpoint, and the singleflight dedup
// mechanism — and DESIGN.md must carry the Layer 7 inventory with the
// dedup invariant spelled out. A service change that ships without
// documentation fails here, exactly like a scenario or proof row would.
func TestDocsCoverService(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	readme := readDoc(t, "README.md")
	for _, doc := range []struct{ name, body string }{
		{"DESIGN.md", design},
		{"README.md", readme},
	} {
		for _, want := range []string{"cmd/tpserved", "internal/serve", "singleflight", "/v1/jobs", "dedup invariant", "byte identity"} {
			if !strings.Contains(doc.body, want) {
				t.Errorf("%s does not mention %q", doc.name, want)
			}
		}
	}
	for _, want := range []string{
		"## Layer 7",
		"internal/serve/loadtest",
		"distinct submitted keys",
	} {
		if !strings.Contains(design, want) {
			t.Errorf("DESIGN.md does not contain %q", want)
		}
	}
	if !strings.Contains(readme, "-selftest") {
		t.Error("README.md does not document tpserved -selftest")
	}
}

func readDoc(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return string(b)
}
