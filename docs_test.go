package timeprot

import (
	"os"
	"strings"
	"testing"

	"timeprot/internal/attacks"
)

// TestDocsCoverRegistry is the registry-completeness check: every
// scenario the registry knows must be documented in EXPERIMENTS.md (a
// result table) and DESIGN.md (the layer-3 inventory). A scenario that
// ships without documentation — or a doc table that outlives a removed
// scenario — fails here, so the docs pipeline cannot drift from the
// code. The byte-level drift check (regenerating EXPERIMENTS.md from
// the committed sweep store and comparing) runs in CI's docs job.
func TestDocsCoverRegistry(t *testing.T) {
	experiments := readDoc(t, "EXPERIMENTS.md")
	design := readDoc(t, "DESIGN.md")
	for _, s := range attacks.Scenarios() {
		if !strings.Contains(experiments, "## "+s.ID+" — ") {
			t.Errorf("EXPERIMENTS.md has no result table for %s (%s)", s.ID, s.Name)
		}
		if !strings.Contains(design, s.ID) {
			t.Errorf("DESIGN.md does not mention %s (%s)", s.ID, s.Name)
		}
		for _, v := range s.Variants {
			if !strings.Contains(experiments, "| "+v.Label+" |") {
				t.Errorf("EXPERIMENTS.md table for %s is missing variant %q", s.ID, v.Label)
			}
		}
	}
}

// TestExperimentsRegenCommand: the committed EXPERIMENTS.md must embed
// the exact command that regenerates it — the contract the CI doc-drift
// job replays against the committed sweep store.
func TestExperimentsRegenCommand(t *testing.T) {
	experiments := readDoc(t, "EXPERIMENTS.md")
	if !strings.Contains(experiments, "go run ./cmd/tpbench") ||
		!strings.Contains(experiments, "-md EXPERIMENTS.md") {
		t.Error("EXPERIMENTS.md does not embed its regeneration command")
	}
}

func readDoc(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return string(b)
}
