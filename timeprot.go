// Package timeprot is a full reproduction, as a Go library, of
// "Can We Prove Time Protection?" (Heiser, Klein, Murray — HotOS 2019):
// an executable study of OS-level time protection and of the paper's
// central claim that it can be formally verified by reasoning about an
// abstract partitionable/flushable model of the microarchitecture.
//
// The library stacks five layers:
//
//   - a deterministic cycle-accounted hardware simulator (caches with
//     page colours, TLB, branch predictor, prefetcher, shared bus,
//     optional SMT),
//   - an seL4-like kernel model implementing the §4.2 mechanisms:
//     flushing of core-local state on domain switches, padded
//     constant-time switches, cache colouring, per-domain kernel clones,
//     interrupt partitioning, and deterministic minimum-time IPC,
//   - attack harnesses and channel-capacity estimation reproducing the
//     timing channels the paper discusses (prime-and-probe, flush
//     latency, kernel image, interrupts, SMT, interconnect, the Fig. 1
//     downgrader, the stride prefetcher, whole-LLC occupancy, and a
//     multi-bit cross-core channel), with bootstrap confidence
//     intervals on every capacity estimate and an adaptive sweep mode
//     that samples each cell only until its verdict is settled,
//   - a prover over the paper's abstract model: unwinding lemmas for the
//     §5.2 case analysis plus exhaustive bounded noninterference
//     checking, quantified over sampled "deterministic yet unspecified"
//     time functions,
//   - a conformance harness cross-checking the two: randomly generated
//     Hi program pairs run through BOTH the abstract prover and the
//     concrete simulator, with any prover-accepts/simulator-leaks
//     disagreement minimised into a soundness-violation witness.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced results.
package timeprot

import (
	"fmt"
	"io"
	"runtime"

	"timeprot/internal/attacks"
	"timeprot/internal/conform"
	"timeprot/internal/core"
	"timeprot/internal/discover"
	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/invariant"
	"timeprot/internal/prove/nonintf"
)

// Re-exported configuration and system types: the public API for
// building and running protected systems.
type (
	// Config selects the armed time-protection mechanisms (§4).
	Config = core.Config
	// DomainSpec is a security domain's policy: slice, pad, colours,
	// IRQ ownership.
	DomainSpec = core.DomainSpec
	// PlatformConfig sizes the simulated machine.
	PlatformConfig = platform.Config
	// SystemConfig assembles a complete system.
	SystemConfig = kernel.SystemConfig
	// System is an assembled machine + kernel + workload.
	System = kernel.System
	// Program is a direct-execution user program: a resumable step
	// function the kernel's event loop invokes inline, one operation
	// per step — the simulator's hot path. Spawn with
	// System.SpawnProgram.
	Program = kernel.Program
	// Machine is the per-thread execution context a Program steps
	// against: previous result accessors plus one-operation issue
	// methods.
	Machine = kernel.Machine
	// ProgramStatus is a Program step's answer to the scheduler.
	ProgramStatus = kernel.Status
	// UserCtx is the legacy blocking interface thread functions run
	// against, kept as a goroutine-bridge adapter over Program; use
	// System.Spawn. It costs two channel handoffs per instruction —
	// prefer Program for anything throughput-sensitive.
	UserCtx = kernel.UserCtx
	// Thread is a spawned thread handle.
	Thread = kernel.Thread
	// EndpointSpec declares a synchronous IPC endpoint, optionally
	// with a minimum-delivery-time attribute (§3.2).
	EndpointSpec = kernel.EndpointSpec
	// RunReport summarises a completed run.
	RunReport = kernel.Report
	// ColorSet is a set of LLC page colours.
	ColorSet = mem.ColorSet

	// Experiment is a reproduced experiment table.
	Experiment = attacks.Experiment
	// ExperimentRow is one configuration's measured row.
	ExperimentRow = attacks.Row

	// ModelConfig instantiates the abstract §5.1 model for proving.
	ModelConfig = absmodel.Config
	// ProofReport carries the §5.2 case-analysis verdicts plus the
	// bounded noninterference result for one configuration.
	ProofReport = nonintf.ProofReport
	// InvariantReport carries the concrete-simulator functional
	// property verdicts.
	InvariantReport = invariant.Report
	// FlushMonitor checks the flush invariant during a run.
	FlushMonitor = invariant.FlushMonitor
	// ContractReport is the aISA hardware-software contract check.
	ContractReport = core.ContractReport
)

// Program step statuses: Running means the step issued its next
// operation; Done means the program finished.
const (
	Running = kernel.Running
	Done    = kernel.Done
)

// ReplayProgram adapts a Program to the legacy goroutine+UserCtx
// execution path. Both paths run the identical operation stream; the
// kernel's equivalence tests rely on this to prove the two execution
// models produce bit-identical traces.
func ReplayProgram(p Program) func(*UserCtx) { return kernel.ReplayProgram(p) }

// FullProtection arms every mechanism of §4.
func FullProtection() Config { return core.FullProtection() }

// NoProtection disables every mechanism (a conventional OS).
func NoProtection() Config { return core.NoProtection() }

// DefaultPlatform returns the default simulated machine: 2 cores, 4 MiB
// 16-way LLC (64 page colours), 64 MiB memory, 8 IRQ lines.
func DefaultPlatform() PlatformConfig { return platform.DefaultConfig() }

// NewSystem builds a system from its configuration.
func NewSystem(cfg SystemConfig) (*System, error) { return kernel.NewSystem(cfg) }

// ColorRange returns the colour set {lo, ..., hi-1}.
func ColorRange(lo, hi int) ColorSet { return mem.ColorRange(lo, hi) }

// NewColorSet builds a colour set from a list.
func NewColorSet(colors ...int) ColorSet { return mem.NewColorSet(colors...) }

// CheckContract evaluates the security-oriented hardware-software
// contract (the aISA of Ge et al. [2018a]) for a protection configuration
// on a platform.
func CheckContract(cfg Config, p PlatformConfig) ContractReport {
	colors := p.LLCSets * 64 / 4096 // sets * line / page
	if colors < 1 {
		colors = 1
	}
	return core.CheckContract(cfg, colors, p.SMTWays)
}

// ExperimentIDs lists the experiment identifiers in presentation order,
// as registered in the attack-scenario registry.
var ExperimentIDs = attacks.ScenarioIDs()

// RunExperiment reproduces one experiment table by ID (or short scenario
// name, e.g. "l1pp") with the given round count and seed. Rounds below
// the per-experiment minimum are raised to it, so small values are safe
// everywhere.
func RunExperiment(id string, rounds int, seed uint64) (Experiment, error) {
	s, ok := attacks.ScenarioByID(id)
	if !ok {
		return Experiment{}, fmt.Errorf("timeprot: unknown experiment %q (have %v)", id, ExperimentIDs)
	}
	return s.Experiment(s.Rounds(rounds), seed), nil
}

// AllExperiments reproduces every experiment table.
func AllExperiments(rounds int, seed uint64) []Experiment {
	out := make([]Experiment, 0, len(ExperimentIDs))
	for _, id := range ExperimentIDs {
		e, err := RunExperiment(id, rounds, seed)
		if err != nil {
			panic(err) // unreachable: IDs come from the table above
		}
		out = append(out, e)
	}
	return out
}

// DefaultModel returns the default abstract-model instance used for
// proving.
func DefaultModel() ModelConfig { return absmodel.DefaultConfig() }

// Prove runs the §5.2 proof obligations (unwinding lemmas plus bounded
// noninterference over sampled time-function families) for an abstract
// configuration.
func Prove(cfg ModelConfig, families, extraRandom int, seed uint64) ProofReport {
	return nonintf.Prove(cfg, families, extraRandom, seed)
}

// NamedProof pairs a configuration label with its proof report.
type NamedProof struct {
	// Name labels the configuration (e.g. "full", "no-flush").
	Name string
	// Report is the proof outcome.
	Report ProofReport
}

// ProofMatrix reproduces experiment T1: the full-protection proof plus
// one ablation per mechanism, each expected to fail in exactly its case.
// The configurations run concurrently; results are deterministic.
func ProofMatrix(families, extraRandom int, seed uint64) []NamedProof {
	results := experiment.RunProofs(families, extraRandom, seed, runtime.GOMAXPROCS(0))
	out := make([]NamedProof, 0, len(results))
	for _, r := range results {
		out = append(out, NamedProof{Name: r.Name, Report: r.Report})
	}
	return out
}

// Proof-matrix engine types, re-exported from the experiment engine:
// the public API for running the ablation × model-variant × families ×
// seed proof grid through the deterministic worker pool and the
// content-addressed store.
type (
	// ProofMatrixSpec declares a proof matrix (ablations × model
	// variants × family counts × seeds).
	ProofMatrixSpec = experiment.ProofSpec
	// ProofMatrixOptions tunes parallelism, caching, and sharding; it
	// never affects results.
	ProofMatrixOptions = experiment.ProofOptions
	// ProofMatrixReport is a completed proof matrix with per-cell
	// verdicts and witnesses.
	ProofMatrixReport = experiment.ProofMatrix
	// ProofMatrixCell is one (ablation, model, families, seed) point.
	ProofMatrixCell = experiment.ProofCell
	// ProofMatrixCellResult is a completed cell's flattened verdict.
	ProofMatrixCellResult = experiment.ProofCellResult
	// ProofWitness is a minimal counterexample witness: a locally
	// minimal divergent Hi program pair with the diverging Lo
	// observation traces as evidence.
	ProofWitness = nonintf.Witness
)

// ProofAblations lists the canonical T1 ablation rows in presentation
// order; ProofModels lists the registered abstract-model variants.
func ProofAblations() []experiment.ProofAblation { return experiment.ProofAblations() }

// ProofModels lists the registered abstract-model platform variants the
// proof matrix quantifies over.
func ProofModels() []experiment.ProofModel { return experiment.ProofModels() }

// ProverFingerprint returns the prover fingerprint under which proof
// cells are keyed in the sweep store: the registered model-version
// strings of the absmodel, nonintf, and invariant layers. Bumping any
// of them turns every cached proof cell into a structural miss.
func ProverFingerprint() string { return experiment.ProverFingerprint() }

// RunProofMatrix executes a proof matrix on a worker pool, serving
// cached cells from the store when one is given. The report is a pure
// function of the spec; worker count and cache state cannot change a
// bit of it.
func RunProofMatrix(spec ProofMatrixSpec, opt ProofMatrixOptions) (*ProofMatrixReport, error) {
	return experiment.RunProofMatrix(spec, opt)
}

// WriteProofsJSON serialises a proof matrix as indented JSON.
func WriteProofsJSON(w io.Writer, m *ProofMatrixReport) error {
	return experiment.WriteProofsJSON(w, m)
}

// WriteProofsMarkdown renders a proof matrix as the PROOFS.md document
// (regeneration command, one verdict table per model variant, and the
// minimal counterexample witness behind every refuted row).
func WriteProofsMarkdown(w io.Writer, m *ProofMatrixReport) error {
	return experiment.WriteProofsMarkdown(w, m)
}

// WriteProofsText renders a proof matrix as aligned text.
func WriteProofsText(w io.Writer, m *ProofMatrixReport) error {
	return experiment.WriteProofsText(w, m)
}

// Conformance-harness types, re-exported from the experiment engine:
// the public API for property-based cross-checking of the abstract
// prover model against the concrete simulator. Each cell generates a
// random Hi program pair, runs it through the abstract prover (bounded
// noninterference over sampled time-function families) AND the
// concrete simulator (a compiled trojan/spy measurement with CI-backed
// capacity estimates), and classifies the disagreement: a cell where
// the prover accepts while the simulator measures a replicated leak is
// a soundness violation — the abstract model fails to over-approximate
// a concrete channel — and is minimised into a witness.
type (
	// ConformanceSpec declares a conformance matrix (model variants ×
	// ablations × generated pairs × seeds).
	ConformanceSpec = experiment.ConformanceSpec
	// ConformanceOptions tunes parallelism, caching, and sharding; it
	// never affects results.
	ConformanceOptions = experiment.ConformanceOptions
	// ConformanceReport is a completed conformance matrix with
	// per-cell dual-driver results and verdicts.
	ConformanceReport = experiment.ConformanceMatrix
	// ConformanceCell is one (model, ablation, pair, seed) point.
	ConformanceCell = experiment.ConformanceCell
	// ConformanceCellResult is a completed cell's cross-check outcome.
	ConformanceCellResult = experiment.ConformanceCellResult
	// ConformanceWitness is a minimised soundness violation: the
	// smallest program pair the prover still accepts while the
	// simulator still measures a leak.
	ConformanceWitness = conform.ViolationWitness
)

// ConformAblations lists the conformance ablation rows: the proof
// ablation rows both drivers can realise (SMT excluded — the concrete
// conformance driver time-shares one core).
func ConformAblations() []experiment.ConformAblation { return experiment.ConformAblations() }

// ConformFingerprint returns the conformance fingerprint under which
// conformance cells are keyed in the sweep store: the model versions of
// BOTH sides (abstract prover layers and concrete simulator layers)
// plus the harness's own version. Bumping any of them turns every
// cached conformance cell into a structural miss, so soundness is
// re-certified cold exactly when a model changed.
func ConformFingerprint() string { return experiment.ConformFingerprint() }

// RunConformance executes a conformance matrix on a worker pool,
// serving cached cells from the store when one is given. The report is
// a pure function of the spec; worker count and cache state cannot
// change a bit of it.
func RunConformance(spec ConformanceSpec, opt ConformanceOptions) (*ConformanceReport, error) {
	return experiment.RunConformance(spec, opt)
}

// WriteConformanceJSON serialises a conformance matrix as indented JSON.
func WriteConformanceJSON(w io.Writer, m *ConformanceReport) error {
	return experiment.WriteConformanceJSON(w, m)
}

// WriteConformanceText renders a conformance matrix as an aligned
// verdict table plus a detail line per soundness violation.
func WriteConformanceText(w io.Writer, m *ConformanceReport) error {
	return experiment.WriteConformanceText(w, m)
}

// Sweep types re-exported from the experiment engine: the public API for
// running the full attack × mitigation × seed matrix concurrently.
type (
	// SweepSpec declares an experiment sweep (scenarios × variants ×
	// seeds × trials, plus the proof matrix).
	SweepSpec = experiment.Spec
	// SweepOptions tunes parallelism and progress reporting; it never
	// affects results.
	SweepOptions = experiment.Options
	// SweepReport is a completed sweep with per-cell measurements.
	SweepReport = experiment.Report
	// SweepCell is one (scenario, variant, seed) point of the matrix.
	SweepCell = experiment.Cell
	// SweepCellResult is a completed cell's flattened measurement.
	SweepCellResult = experiment.CellResult
	// SweepStore is the content-addressed result store: cells keyed by
	// a stable hash of everything their measurement depends on, so
	// sweeps become incremental (cached cells are served, not re-run)
	// and sharded stores merge associatively across machines.
	SweepStore = store.Store
	// SweepCellStore is the backend-agnostic store contract both the
	// file-per-cell and packed segment backends satisfy; it is what
	// SweepOptions.Store accepts.
	SweepCellStore = store.CellStore
	// SweepPackedStore is the packed segment backend: entries as
	// checksummed records in append-only segment files with an
	// in-memory index — one or a handful of inodes for millions of
	// cells.
	SweepPackedStore = store.Packed
	// SweepPackedOptions tunes a packed store (fingerprint tags for
	// compaction, segment size, sync cadence).
	SweepPackedOptions = store.PackedOptions
	// SweepShard selects one shard of a matrix's deterministic
	// partition for distributed execution.
	SweepShard = experiment.ShardSel
	// SweepCacheStats reports how a sweep interacted with its store.
	SweepCacheStats = experiment.CacheStats
)

// Adaptive-sampling defaults, re-exported from the experiment engine:
// set SweepSpec.CIHalfWidth to DefaultSweepCIHalfWidth to stop each
// cell as soon as its capacity's 95% bootstrap confidence interval is
// tight enough (or its leak verdict certain), instead of burning the
// fixed round budget everywhere.
const DefaultSweepCIHalfWidth = experiment.DefaultCIHalfWidth

// OpenSweepStore opens (creating if needed) the content-addressed sweep
// store rooted at dir. Pass it via SweepOptions.Store; merge shard
// stores with its MergeFrom method.
func OpenSweepStore(dir string) (*SweepStore, error) { return store.Open(dir) }

// OpenPackedSweepStore opens (creating if needed) the packed segment
// store rooted at dir. Tag it with the current fingerprints (see
// SweepPackedOptions) so Compact can drop entries no lookup can reach.
func OpenPackedSweepStore(dir string, opt SweepPackedOptions) (*SweepPackedStore, error) {
	return store.OpenPacked(dir, opt)
}

// SweepFingerprint returns the engine fingerprint under which this
// build keys store cells: the registered model-version strings of the
// hardware, kernel, estimator, and attack layers. Any semantic change
// to a layer bumps its version, so stale cells can never be served.
func SweepFingerprint() string { return experiment.Fingerprint() }

// RunSweep executes an experiment sweep on a worker pool. The report is
// a pure function of the spec: worker count cannot change a bit of it.
func RunSweep(spec SweepSpec, opt SweepOptions) (*SweepReport, error) {
	return experiment.Run(spec, opt)
}

// WriteSweepJSON serialises a sweep report as indented JSON.
func WriteSweepJSON(w io.Writer, r *SweepReport) error { return experiment.WriteJSON(w, r) }

// WriteSweepMarkdown renders a sweep report as the EXPERIMENTS.md
// document (regeneration command, contract, proof matrix, one table per
// scenario).
func WriteSweepMarkdown(w io.Writer, r *SweepReport) error { return experiment.WriteMarkdown(w, r) }

// WriteSweepText renders a sweep report as aligned text tables.
func WriteSweepText(w io.Writer, r *SweepReport) error { return experiment.WriteText(w, r) }

// NewFlushMonitor installs the flush-invariant monitor on a system; call
// before Run and pass the monitor to CheckInvariants afterwards.
func NewFlushMonitor(sys *System) *FlushMonitor { return invariant.NewFlushMonitor(sys) }

// CheckInvariants runs the concrete functional-property checkers (§5's
// partitioning/flushing/padding-as-functional-properties) against a
// completed run.
func CheckInvariants(sys *System, fm *FlushMonitor) InvariantReport {
	return invariant.CheckSystem(sys, fm)
}

// CheckInvariantsTLB runs the §5.3 TLB partitioning theorem check (T10)
// and reports whether it holds.
func CheckInvariantsTLB() bool {
	return invariant.CheckTLBTheorem(50, 97).Pass
}

// RecommendPad returns a static worst-case bound on the domain-switch
// work for a platform — the "separate analysis" the paper's padding
// assumption calls for (§5.2). Use it as DomainSpec.PadCycles.
func RecommendPad(p PlatformConfig) uint64 { return kernel.RecommendPad(p) }

// Channel-discovery fuzzer types, re-exported from the discover layer:
// the public API for coverage-guided search over the ablation surface.
type (
	// FuzzOptions parameterises one discovery campaign; the discovery
	// set is a pure function of its semantic fields.
	FuzzOptions = discover.Options
	// FuzzResult is a completed campaign: discoveries, soundness
	// violations, and search accounting.
	FuzzResult = discover.Result
	// FuzzDiscovery is one confirmed, shrunk channel discovery — the
	// witness form discoveries.json commits and the registry replays.
	FuzzDiscovery = discover.Discovery
)

// Fuzz runs one channel-discovery campaign: mutate seeded trojan/spy
// pairs, screen them across the flush/pad/partition ablation surface
// with coverage feedback, and shrink every confirmed leak that full
// protection closes into a minimal replayable witness.
func Fuzz(opt FuzzOptions) (*FuzzResult, error) { return discover.Fuzz(opt) }

// FuzzFingerprint returns the discovery fingerprint under which the
// fuzzer keys cached candidate evaluations in the store.
func FuzzFingerprint() string { return discover.Fingerprint() }

// WriteFuzzReport renders a campaign result as aligned text.
func WriteFuzzReport(w io.Writer, r *FuzzResult) error { return discover.WriteReport(w, r) }

// WriteDiscoveriesMD renders committed discoveries as DISCOVERIES.md.
func WriteDiscoveriesMD(w io.Writer, ds []FuzzDiscovery) error {
	return discover.WriteDiscoveriesMD(w, ds)
}

// CommittedDiscoveries returns the discoveries pinned in the embedded
// discoveries.json — the ones init auto-registered as F-scenarios.
func CommittedDiscoveries() ([]FuzzDiscovery, error) { return discover.CommittedDiscoveries() }

// The committed discoveries register as dynamic attack scenarios (F1,
// F2, …) in every embedding process, so CLIs, tests, and library users
// all see the same registry. A malformed committed file is a build
// defect, not a runtime condition: fail loudly.
func init() {
	if err := discover.RegisterCommitted(); err != nil {
		panic(err)
	}
}

// NIResult is a concrete two-run noninterference comparison outcome.
type NIResult = invariant.NIResult

// TwoRunNI runs the same Lo observer against two different Hi programs
// under prot and compares every timing observation Lo makes. Under full
// protection the sequences are bit-identical; any divergence is a
// concrete timing channel.
func TwoRunNI(prot Config, hiA, hiB func(*UserCtx), loOps int) (NIResult, error) {
	return invariant.TwoRunNI(prot, hiA, hiB, loOps)
}
