module timeprot

go 1.24
