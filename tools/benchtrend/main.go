// Command benchtrend compares two BENCH_N.json perf-trajectory files
// and fails (exit 1) on a cell-throughput regression.
//
// Usage:
//
//	go run ./tools/benchtrend OLD.json NEW.json [-max-regress PCT]
//
// The gated figure is cells.cells_per_sec_warm — the whole-cell
// throughput of the pooled hot path on the fixed bench matrix (see
// tpbench -bench-cells). Absolute numbers are machine-dependent, so the
// comparison only runs when both files report the same cpu string;
// otherwise the files are declared not comparable and the check passes.
// A file without a cells section (trajectories before PR 7) also passes:
// the gate arms itself as soon as both sides carry the figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchFile is the subset of the BENCH_N.json schema benchtrend reads.
type benchFile struct {
	PR    int    `json:"pr"`
	CPU   string `json:"cpu"`
	Cells *struct {
		CellsPerSecCold float64 `json:"cells_per_sec_cold"`
		CellsPerSecWarm float64 `json:"cells_per_sec_warm"`
	} `json:"cells"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtrend: "+format+"\n", args...)
	os.Exit(1)
}

func load(path string) benchFile {
	b, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		fail("%s: %v", path, err)
	}
	return f
}

func main() {
	maxRegress := flag.Float64("max-regress", 20, "maximum allowed cells/sec (warm) regression, percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fail("usage: benchtrend OLD.json NEW.json [-max-regress PCT]")
	}
	oldF, newF := load(flag.Arg(0)), load(flag.Arg(1))

	if oldF.Cells == nil {
		fmt.Printf("benchtrend: %s (PR %d) has no cells section; nothing to compare\n", flag.Arg(0), oldF.PR)
		return
	}
	if newF.Cells == nil {
		fail("%s (PR %d) dropped the cells section present in %s", flag.Arg(1), newF.PR, flag.Arg(0))
	}
	if oldF.CPU != newF.CPU {
		fmt.Printf("benchtrend: hosts differ (%q vs %q); absolute throughput not comparable\n", oldF.CPU, newF.CPU)
		return
	}
	oldW, newW := oldF.Cells.CellsPerSecWarm, newF.Cells.CellsPerSecWarm
	if oldW <= 0 {
		fail("%s has non-positive cells_per_sec_warm %v", flag.Arg(0), oldW)
	}
	change := 100 * (newW - oldW) / oldW
	fmt.Printf("benchtrend: warm cells/sec %.2f -> %.2f (%+.1f%%), gate -%.0f%%\n",
		oldW, newW, change, *maxRegress)
	if change < -*maxRegress {
		fail("PR %d regresses warm cell throughput %.1f%% vs PR %d (limit %.0f%%)",
			newF.PR, -change, oldF.PR, *maxRegress)
	}
}
