// Command benchtrend compares two BENCH_N.json perf-trajectory files
// and fails (exit 1) on a cell-throughput regression.
//
// Usage:
//
//	go run ./tools/benchtrend OLD.json NEW.json [-max-regress PCT]
//
// Flags and the two positional files may be interleaved in any order:
// benchtrend parses the whole command line itself, because the stdlib
// flag package stops at the first positional and would silently drop a
// trailing -max-regress — turning a deliberately tightened gate into
// the default one with exit status 0.
//
// The gated figure is cells.cells_per_sec_warm — the whole-cell
// throughput of the pooled hot path on the fixed bench matrix (see
// tpbench -bench-cells). Absolute numbers are machine-dependent, so the
// comparison only runs when both files report the same cpu string;
// otherwise the files are declared not comparable and the check passes.
// A file without a cells section (trajectories before PR 7) also passes:
// the gate arms itself as soon as both sides carry the figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// benchFile is the subset of the BENCH_N.json schema benchtrend reads.
type benchFile struct {
	PR    int    `json:"pr"`
	CPU   string `json:"cpu"`
	Cells *struct {
		CellsPerSecCold float64 `json:"cells_per_sec_cold"`
		CellsPerSecWarm float64 `json:"cells_per_sec_warm"`
	} `json:"cells"`
	Fuzz *struct {
		PairsPerSec float64 `json:"fuzz_pairs_per_sec"`
	} `json:"fuzz"`
}

func load(path string) (benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return benchFile{}, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

// parseArgs splits a command line into flags and positionals with the
// two freely interleaved: each flag.Parse pass stops at the first
// positional, which is collected and parsing resumes after it.
func parseArgs(fs *flag.FlagSet, args []string) (positionals []string, err error) {
	rest := args
	for len(rest) > 0 {
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		positionals = append(positionals, rest[0])
		rest = rest[1:]
	}
	return positionals, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	maxRegress := fs.Float64("max-regress", 20, "maximum allowed cells/sec (warm) regression, percent")
	files, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(files) != 2 {
		return fmt.Errorf("usage: benchtrend OLD.json NEW.json [-max-regress PCT]")
	}
	oldF, err := load(files[0])
	if err != nil {
		return err
	}
	newF, err := load(files[1])
	if err != nil {
		return err
	}

	if oldF.Cells == nil {
		fmt.Fprintf(stdout, "benchtrend: %s (PR %d) has no cells section; nothing to compare\n", files[0], oldF.PR)
		return nil
	}
	if newF.Cells == nil {
		return fmt.Errorf("%s (PR %d) dropped the cells section present in %s", files[1], newF.PR, files[0])
	}
	if oldF.CPU != newF.CPU {
		fmt.Fprintf(stdout, "benchtrend: hosts differ (%q vs %q); absolute throughput not comparable\n", oldF.CPU, newF.CPU)
		return nil
	}
	oldW, newW := oldF.Cells.CellsPerSecWarm, newF.Cells.CellsPerSecWarm
	if oldW <= 0 {
		return fmt.Errorf("%s has non-positive cells_per_sec_warm %v", files[0], oldW)
	}
	change := 100 * (newW - oldW) / oldW
	fmt.Fprintf(stdout, "benchtrend: warm cells/sec %.2f -> %.2f (%+.1f%%), gate -%.0f%%\n",
		oldW, newW, change, *maxRegress)
	if change < -*maxRegress {
		return fmt.Errorf("PR %d regresses warm cell throughput %.1f%% vs PR %d (limit %.0f%%)",
			newF.PR, -change, oldF.PR, *maxRegress)
	}

	// The fuzzer-throughput gate arms itself the same way the cells
	// gate did: trajectories before the fuzz section pass, dropping the
	// section once present fails.
	if oldF.Fuzz == nil {
		fmt.Fprintf(stdout, "benchtrend: %s (PR %d) has no fuzz section; fuzz gate not armed\n", files[0], oldF.PR)
		return nil
	}
	if newF.Fuzz == nil {
		return fmt.Errorf("%s (PR %d) dropped the fuzz section present in %s", files[1], newF.PR, files[0])
	}
	oldP, newP := oldF.Fuzz.PairsPerSec, newF.Fuzz.PairsPerSec
	if oldP <= 0 {
		return fmt.Errorf("%s has non-positive fuzz_pairs_per_sec %v", files[0], oldP)
	}
	fchange := 100 * (newP - oldP) / oldP
	fmt.Fprintf(stdout, "benchtrend: fuzz pairs/sec %.2f -> %.2f (%+.1f%%), gate -%.0f%%\n",
		oldP, newP, fchange, *maxRegress)
	if fchange < -*maxRegress {
		return fmt.Errorf("PR %d regresses fuzzer throughput %.1f%% vs PR %d (limit %.0f%%)",
			newF.PR, -fchange, oldF.PR, *maxRegress)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(1)
	}
}
