package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench drops a minimal BENCH_N.json with the given warm
// throughput and returns its path.
func writeBench(t *testing.T, name string, pr int, warm float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data := fmt.Sprintf(`{"pr": %d, "cpu": "test-cpu", "cells": {"cells_per_sec_cold": 1, "cells_per_sec_warm": %g}}`, pr, warm)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlagsParseInEitherOrder is the regression test for the silent
// flag drop: with stdlib flag.Parse, a -max-regress AFTER the two
// positional files was ignored and the default 20% gate applied. A 10%
// regression must now fail a -max-regress=5 gate in both orderings.
func TestFlagsParseInEitherOrder(t *testing.T) {
	oldJSON := writeBench(t, "old.json", 1, 100)
	newJSON := writeBench(t, "new.json", 2, 90) // 10% regression

	orderings := map[string][]string{
		"flags-first": {"-max-regress", "5", oldJSON, newJSON},
		"flags-last":  {oldJSON, newJSON, "-max-regress", "5"},
		"interleaved": {oldJSON, "-max-regress", "5", newJSON},
	}
	for name, args := range orderings {
		t.Run(name, func(t *testing.T) {
			err := run(args, &strings.Builder{})
			if err == nil {
				t.Fatalf("args %v: 10%% regression passed a 5%% gate (flag silently dropped)", args)
			}
			if !strings.Contains(err.Error(), "regresses") {
				t.Fatalf("args %v: unexpected error: %v", args, err)
			}
		})
	}
}

// TestDefaultGatePassesSmallRegression pins the default behaviour: a
// 10% regression is within the default 20% gate, whatever the
// argument order.
func TestDefaultGatePassesSmallRegression(t *testing.T) {
	oldJSON := writeBench(t, "old.json", 1, 100)
	newJSON := writeBench(t, "new.json", 2, 90)
	if err := run([]string{oldJSON, newJSON}, &strings.Builder{}); err != nil {
		t.Fatalf("10%% regression failed the default 20%% gate: %v", err)
	}
}

// TestLooseGateAfterPositionalsIsHonoured is the mirror image: a 30%
// regression fails the default gate but passes an explicit trailing
// -max-regress=50 — which only works if the trailing flag is parsed.
func TestLooseGateAfterPositionalsIsHonoured(t *testing.T) {
	oldJSON := writeBench(t, "old.json", 1, 100)
	newJSON := writeBench(t, "new.json", 2, 70) // 30% regression

	if err := run([]string{oldJSON, newJSON}, &strings.Builder{}); err == nil {
		t.Fatal("30% regression passed the default 20% gate")
	}
	if err := run([]string{oldJSON, newJSON, "-max-regress", "50"}, &strings.Builder{}); err != nil {
		t.Fatalf("trailing -max-regress=50 not honoured: %v", err)
	}
}

func TestWrongArgCount(t *testing.T) {
	if err := run([]string{"only-one.json"}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("want usage error, got %v", err)
	}
}

// writeBenchFuzz drops a BENCH_N.json carrying both the cells and fuzz
// sections.
func writeBenchFuzz(t *testing.T, name string, pr int, warm, pairs float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data := fmt.Sprintf(`{"pr": %d, "cpu": "test-cpu", "cells": {"cells_per_sec_cold": 1, "cells_per_sec_warm": %g}, "fuzz": {"fuzz_pairs_per_sec": %g}}`, pr, warm, pairs)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFuzzGate covers the fuzzer-throughput gate: it arms once both
// files carry the fuzz section, fails a regression past the gate,
// passes one within it, and fails a new file that drops the section.
func TestFuzzGate(t *testing.T) {
	oldFuzz := writeBenchFuzz(t, "old.json", 8, 100, 100)

	if err := run([]string{oldFuzz, writeBenchFuzz(t, "new.json", 9, 100, 70)}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "fuzzer throughput") {
		t.Fatalf("30%% fuzzer regression passed the default 20%% gate: %v", err)
	}
	if err := run([]string{oldFuzz, writeBenchFuzz(t, "new.json", 9, 100, 90)}, &strings.Builder{}); err != nil {
		t.Fatalf("10%% fuzzer regression failed the default 20%% gate: %v", err)
	}
	if err := run([]string{oldFuzz, writeBench(t, "new.json", 9, 100)}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "dropped the fuzz section") {
		t.Fatalf("dropping the fuzz section was accepted: %v", err)
	}
	// Pre-fuzz trajectories never arm the gate.
	if err := run([]string{writeBench(t, "old.json", 7, 100), writeBenchFuzz(t, "new.json", 9, 100, 50)}, &strings.Builder{}); err != nil {
		t.Fatalf("unarmed fuzz gate failed: %v", err)
	}
}
